//! Poison bits and poison bitvectors.
//!
//! Runahead-style mechanisms mark the destination of a missing load as
//! *poisoned* and propagate that mark through data dependences so that
//! miss-dependent instructions can be identified.  The paper's Section 3.4
//! extends the single poison bit to a small *bitvector* (8 bits by default):
//! each outstanding miss (MSHR) is assigned one bit, so that when a particular
//! miss returns, a rally can skip slice-buffer entries whose poison does not
//! include that bit.  This module provides both, plus [`PoisonVec`]: a packed
//! *plane* of poison masks (four 16-bit lanes per `u64` word) covering a whole
//! register file or slice buffer, so bulk operations — union, clear-bits,
//! any-poisoned, rally selection — run as word operations instead of
//! per-entry bit loops.

use icfp_mem::MshrId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A poison bitvector of up to 16 bits (the paper uses 1 and 8).
///
/// The empty mask means "not poisoned".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoisonMask(u16);

impl PoisonMask {
    /// The non-poisoned mask.
    pub const CLEAN: PoisonMask = PoisonMask(0);

    /// Creates a mask with a single bit set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn bit(bit: u8) -> Self {
        assert!(bit < 16, "poison bit index {bit} out of range");
        PoisonMask(1 << bit)
    }

    /// The mask with every representable bit set (matches any poison).
    pub fn all_bits() -> Self {
        PoisonMask(u16::MAX)
    }

    /// True if no poison bit is set.
    pub fn is_clean(self) -> bool {
        self.0 == 0
    }

    /// True if any poison bit is set.
    pub fn is_poisoned(self) -> bool {
        self.0 != 0
    }

    /// Union of two masks (dependence merge).
    pub fn union(self, other: PoisonMask) -> PoisonMask {
        PoisonMask(self.0 | other.0)
    }

    /// Removes the bits of `other` from this mask (un-poisoning when a miss
    /// returns).
    pub fn without(self, other: PoisonMask) -> PoisonMask {
        PoisonMask(self.0 & !other.0)
    }

    /// True if this mask shares any bit with `other`.
    pub fn intersects(self, other: PoisonMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of set bits.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Raw bit representation.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs a mask from its raw bit representation.
    pub fn from_bits(bits: u16) -> Self {
        PoisonMask(bits)
    }

    /// This mask replicated into all four 16-bit lanes of a `u64` word — the
    /// comparand for word-granular [`PoisonVec`] scans (hoist it out of the
    /// scan loop).
    #[inline]
    pub fn broadcast(self) -> u64 {
        broadcast(self.0)
    }
}

impl fmt::Display for PoisonMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean")
        } else {
            write!(f, "poison[{:#06x}]", self.0)
        }
    }
}

impl std::ops::BitOr for PoisonMask {
    type Output = PoisonMask;
    fn bitor(self, rhs: Self) -> Self::Output {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for PoisonMask {
    fn bitor_assign(&mut self, rhs: Self) {
        *self = self.union(rhs);
    }
}

/// Assigns poison bits to outstanding misses.
///
/// With `width == 1` every miss maps to the same bit (the classic single
/// poison bit).  With larger widths, bits are assigned round-robin per MSHR,
/// and misses sharing an MSHR (same cache line) share a bit, exactly as
/// Section 3.4 prescribes ("Load misses to the same MSHR are allocated the
/// same bit ... a simple round-robin scheme is sufficient").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoisonAllocator {
    width: u8,
    next: u8,
    /// Recent MSHR→bit assignments (bounded; old entries are recycled).
    assignments: Vec<(MshrId, u8)>,
}

impl PoisonAllocator {
    /// Creates an allocator for poison vectors of `width` bits (1–16).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 16.
    pub fn new(width: u8) -> Self {
        assert!((1..=16).contains(&width), "poison width must be 1..=16");
        PoisonAllocator {
            width,
            next: 0,
            assignments: Vec::new(),
        }
    }

    /// The configured vector width.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Returns the poison bit for a miss held by `mshr`, allocating one
    /// round-robin if this MSHR has not been seen before.
    pub fn bit_for(&mut self, mshr: MshrId) -> PoisonMask {
        if let Some(&(_, b)) = self.assignments.iter().find(|(id, _)| *id == mshr) {
            return PoisonMask::bit(b);
        }
        let b = self.next % self.width;
        self.next = (self.next + 1) % self.width;
        if self.assignments.len() >= 4 * self.width as usize {
            self.assignments.remove(0);
        }
        self.assignments.push((mshr, b));
        PoisonMask::bit(b)
    }

    /// The poison bit previously assigned to `mshr`, if any — used when a miss
    /// returns to know which bit is being un-poisoned.
    pub fn lookup(&self, mshr: MshrId) -> Option<PoisonMask> {
        self.assignments
            .iter()
            .find(|(id, _)| *id == mshr)
            .map(|&(_, b)| PoisonMask::bit(b))
    }

    /// Forgets the assignment for `mshr` (after its rally pass completes).
    pub fn release(&mut self, mshr: MshrId) {
        self.assignments.retain(|(id, _)| *id != mshr);
    }

    /// Clears all assignments (end of an advance/rally episode).
    pub fn clear(&mut self) {
        self.assignments.clear();
        self.next = 0;
    }
}

/// Poison masks per lane packed into `u64` words.
pub const POISON_LANES_PER_WORD: usize = 4;

const LANE_BITS: usize = 16;
const LANE_ONES: u64 = 0xFFFF;

/// Replicates a 16-bit mask into all four lanes of a word.
#[inline]
fn broadcast(bits: u16) -> u64 {
    bits as u64 * 0x0001_0001_0001_0001
}

/// A packed plane of [`PoisonMask`]es: one 16-bit lane per entry, four lanes
/// per `u64` word.  This is the storage behind the register file's poison
/// state and the slice buffer's rally-selection index; whole-structure
/// operations (clear returning bits everywhere, "is anything poisoned",
/// "which entries intersect this mask") touch `len/4` words instead of
/// looping over `len` entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoisonVec {
    words: Vec<u64>,
    len: usize,
}

impl PoisonVec {
    /// Creates a plane of `len` clean lanes.
    pub fn new(len: usize) -> Self {
        PoisonVec {
            words: vec![0; len.div_ceil(POISON_LANES_PER_WORD)],
            len,
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the plane has no lanes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mask in lane `i`.
    #[inline]
    pub fn get(&self, i: usize) -> PoisonMask {
        debug_assert!(i < self.len);
        let w = self.words[i / POISON_LANES_PER_WORD];
        PoisonMask::from_bits(((w >> ((i % POISON_LANES_PER_WORD) * LANE_BITS)) & LANE_ONES) as u16)
    }

    /// Overwrites lane `i` with `mask`.
    #[inline]
    pub fn set(&mut self, i: usize, mask: PoisonMask) {
        debug_assert!(i < self.len);
        let shift = (i % POISON_LANES_PER_WORD) * LANE_BITS;
        let w = &mut self.words[i / POISON_LANES_PER_WORD];
        *w = (*w & !(LANE_ONES << shift)) | ((mask.bits() as u64) << shift);
    }

    /// Unions `mask` into lane `i`.
    #[inline]
    pub fn or(&mut self, i: usize, mask: PoisonMask) {
        debug_assert!(i < self.len);
        let shift = (i % POISON_LANES_PER_WORD) * LANE_BITS;
        self.words[i / POISON_LANES_PER_WORD] |= (mask.bits() as u64) << shift;
    }

    /// Clears lane `i`.
    #[inline]
    pub fn clear_lane(&mut self, i: usize) {
        self.set(i, PoisonMask::CLEAN);
    }

    /// True if any lane is poisoned.  One compare per word.
    pub fn any_poisoned(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Removes `mask`'s bits from every lane (a returning miss un-poisons the
    /// whole structure).  One AND per word.
    pub fn clear_bits(&mut self, mask: PoisonMask) {
        let keep = !broadcast(mask.bits());
        for w in &mut self.words {
            *w &= keep;
        }
    }

    /// Clears every lane.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Union of all lanes.  One OR per word plus a lane fold.
    pub fn union_all(&self) -> PoisonMask {
        let mut acc = 0u64;
        for &w in &self.words {
            acc |= w;
        }
        acc |= acc >> 32;
        acc |= acc >> 16;
        PoisonMask::from_bits((acc & LANE_ONES) as u16)
    }

    /// Number of poisoned (non-clean) lanes.
    pub fn count_poisoned(&self) -> usize {
        let mut n = 0usize;
        for &w in &self.words {
            if w == 0 {
                continue;
            }
            for lane in 0..POISON_LANES_PER_WORD {
                n += usize::from((w >> (lane * LANE_BITS)) & LANE_ONES != 0);
            }
        }
        n
    }

    /// The raw packed words (read-only), for external word-granular scans
    /// such as the slice buffer's rally selection.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Word `w` ANDed with `mask` broadcast to every lane: non-zero 16-bit
    /// lanes are the entries whose poison intersects `mask`.  Callers locate
    /// them with `trailing_zeros() / 16` and strip lanes with
    /// [`lane_range_mask`].
    #[inline]
    pub fn select_word(&self, w: usize, mask: PoisonMask) -> u64 {
        self.words[w] & broadcast(mask.bits())
    }
}

/// A word mask covering lanes `lane_lo..lane_hi` (for restricting a
/// [`PoisonVec::select_word`] scan to a partial word at a segment edge).
#[inline]
pub fn lane_range_mask(lane_lo: usize, lane_hi: usize) -> u64 {
    debug_assert!(lane_lo <= lane_hi && lane_hi <= POISON_LANES_PER_WORD);
    let lo = if lane_lo >= POISON_LANES_PER_WORD {
        0
    } else {
        u64::MAX << (lane_lo * LANE_BITS)
    };
    let hi = if lane_hi >= POISON_LANES_PER_WORD {
        u64::MAX
    } else {
        !(u64::MAX << (lane_hi * LANE_BITS))
    };
    lo & hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mask_properties() {
        let c = PoisonMask::CLEAN;
        assert!(c.is_clean());
        assert!(!c.is_poisoned());
        assert_eq!(c.count(), 0);
        assert_eq!(c.to_string(), "clean");
    }

    #[test]
    fn union_and_without() {
        let a = PoisonMask::bit(0);
        let b = PoisonMask::bit(3);
        let u = a | b;
        assert_eq!(u.count(), 2);
        assert!(u.intersects(a));
        assert!(u.intersects(b));
        assert_eq!(u.without(a), b);
        assert_eq!(u.without(u), PoisonMask::CLEAN);
    }

    #[test]
    fn bitor_assign_accumulates() {
        let mut m = PoisonMask::CLEAN;
        m |= PoisonMask::bit(1);
        m |= PoisonMask::bit(2);
        assert_eq!(m.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = PoisonMask::bit(16);
    }

    #[test]
    fn single_bit_allocator_always_returns_bit_zero() {
        let mut a = PoisonAllocator::new(1);
        assert_eq!(a.bit_for(MshrId(0)), PoisonMask::bit(0));
        assert_eq!(a.bit_for(MshrId(1)), PoisonMask::bit(0));
        assert_eq!(a.bit_for(MshrId(2)), PoisonMask::bit(0));
    }

    #[test]
    fn same_mshr_gets_same_bit() {
        let mut a = PoisonAllocator::new(8);
        let b0 = a.bit_for(MshrId(7));
        let b1 = a.bit_for(MshrId(8));
        assert_ne!(b0, b1);
        assert_eq!(a.bit_for(MshrId(7)), b0);
        assert_eq!(a.lookup(MshrId(8)), Some(b1));
    }

    #[test]
    fn round_robin_wraps() {
        let mut a = PoisonAllocator::new(2);
        let b0 = a.bit_for(MshrId(0));
        let b1 = a.bit_for(MshrId(1));
        let b2 = a.bit_for(MshrId(2));
        assert_eq!(b0, b2);
        assert_ne!(b0, b1);
    }

    #[test]
    fn release_and_clear() {
        let mut a = PoisonAllocator::new(4);
        a.bit_for(MshrId(1));
        a.release(MshrId(1));
        assert_eq!(a.lookup(MshrId(1)), None);
        a.bit_for(MshrId(2));
        a.clear();
        assert_eq!(a.lookup(MshrId(2)), None);
    }

    #[test]
    #[should_panic(expected = "poison width")]
    fn zero_width_panics() {
        let _ = PoisonAllocator::new(0);
    }

    /// Tiny deterministic generator for the randomized equivalence tests.
    fn lcg(state: &mut u64) -> u64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *state >> 16
    }

    /// A naive per-entry model of what the packed plane must compute.
    struct NaivePlane(Vec<PoisonMask>);

    impl NaivePlane {
        fn any(&self) -> bool {
            self.0.iter().any(|m| m.is_poisoned())
        }
        fn clear_bits(&mut self, m: PoisonMask) {
            for e in &mut self.0 {
                *e = e.without(m);
            }
        }
        fn union_all(&self) -> PoisonMask {
            self.0.iter().copied().fold(PoisonMask::CLEAN, PoisonMask::union)
        }
        fn count(&self) -> usize {
            self.0.iter().filter(|m| m.is_poisoned()).count()
        }
        fn intersecting(&self, m: PoisonMask) -> Vec<usize> {
            (0..self.0.len()).filter(|&i| self.0[i].intersects(m)).collect()
        }
    }

    #[test]
    fn poison_vec_matches_bit_loop_on_randomized_masks() {
        let mut seed = 0x1CF9u64 ^ 0xA5A5_5A5A;
        for round in 0..50 {
            let len = 1 + (lcg(&mut seed) % 130) as usize;
            let mut vec = PoisonVec::new(len);
            let mut naive = NaivePlane(vec![PoisonMask::CLEAN; len]);
            // Random writes: set / or / clear_lane.
            for _ in 0..3 * len {
                let i = (lcg(&mut seed) % len as u64) as usize;
                let m = PoisonMask::from_bits(lcg(&mut seed) as u16);
                match lcg(&mut seed) % 3 {
                    0 => {
                        vec.set(i, m);
                        naive.0[i] = m;
                    }
                    1 => {
                        vec.or(i, m);
                        naive.0[i] = naive.0[i].union(m);
                    }
                    _ => {
                        vec.clear_lane(i);
                        naive.0[i] = PoisonMask::CLEAN;
                    }
                }
            }
            // Whole-plane word ops must agree with the per-entry loop.
            assert_eq!(vec.any_poisoned(), naive.any(), "round {round}");
            assert_eq!(vec.union_all(), naive.union_all(), "round {round}");
            assert_eq!(vec.count_poisoned(), naive.count(), "round {round}");
            for i in 0..len {
                assert_eq!(vec.get(i), naive.0[i], "round {round} lane {i}");
            }
            // Word-granular selection scan must find exactly the intersecting
            // lanes, in ascending order.
            let probe = PoisonMask::from_bits(lcg(&mut seed) as u16 | 1);
            let mut scanned = Vec::new();
            for w in 0..len.div_ceil(POISON_LANES_PER_WORD) {
                let hi = (len - w * POISON_LANES_PER_WORD).min(POISON_LANES_PER_WORD);
                let mut hits = vec.select_word(w, probe) & lane_range_mask(0, hi);
                while hits != 0 {
                    let lane = hits.trailing_zeros() as usize / 16;
                    hits &= !(0xFFFFu64 << (lane * 16));
                    scanned.push(w * POISON_LANES_PER_WORD + lane);
                }
            }
            assert_eq!(scanned, naive.intersecting(probe), "round {round}");
            // Bulk clear of a random returning mask.
            let clear = PoisonMask::from_bits(lcg(&mut seed) as u16);
            vec.clear_bits(clear);
            naive.clear_bits(clear);
            for i in 0..len {
                assert_eq!(vec.get(i), naive.0[i], "round {round} post-clear lane {i}");
            }
        }
    }

    #[test]
    fn lane_range_mask_edges() {
        assert_eq!(lane_range_mask(0, 4), u64::MAX);
        assert_eq!(lane_range_mask(0, 1), 0xFFFF);
        assert_eq!(lane_range_mask(3, 4), 0xFFFF_0000_0000_0000);
        assert_eq!(lane_range_mask(2, 2), 0);
    }
}
