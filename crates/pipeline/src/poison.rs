//! Poison bits and poison bitvectors.
//!
//! Runahead-style mechanisms mark the destination of a missing load as
//! *poisoned* and propagate that mark through data dependences so that
//! miss-dependent instructions can be identified.  The paper's Section 3.4
//! extends the single poison bit to a small *bitvector* (8 bits by default):
//! each outstanding miss (MSHR) is assigned one bit, so that when a particular
//! miss returns, a rally can skip slice-buffer entries whose poison does not
//! include that bit.  This module provides both.

use icfp_mem::MshrId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A poison bitvector of up to 16 bits (the paper uses 1 and 8).
///
/// The empty mask means "not poisoned".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoisonMask(u16);

impl PoisonMask {
    /// The non-poisoned mask.
    pub const CLEAN: PoisonMask = PoisonMask(0);

    /// Creates a mask with a single bit set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn bit(bit: u8) -> Self {
        assert!(bit < 16, "poison bit index {bit} out of range");
        PoisonMask(1 << bit)
    }

    /// The mask with every representable bit set (matches any poison).
    pub fn all_bits() -> Self {
        PoisonMask(u16::MAX)
    }

    /// True if no poison bit is set.
    pub fn is_clean(self) -> bool {
        self.0 == 0
    }

    /// True if any poison bit is set.
    pub fn is_poisoned(self) -> bool {
        self.0 != 0
    }

    /// Union of two masks (dependence merge).
    pub fn union(self, other: PoisonMask) -> PoisonMask {
        PoisonMask(self.0 | other.0)
    }

    /// Removes the bits of `other` from this mask (un-poisoning when a miss
    /// returns).
    pub fn without(self, other: PoisonMask) -> PoisonMask {
        PoisonMask(self.0 & !other.0)
    }

    /// True if this mask shares any bit with `other`.
    pub fn intersects(self, other: PoisonMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of set bits.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Raw bit representation.
    pub fn bits(self) -> u16 {
        self.0
    }
}

impl fmt::Display for PoisonMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean")
        } else {
            write!(f, "poison[{:#06x}]", self.0)
        }
    }
}

impl std::ops::BitOr for PoisonMask {
    type Output = PoisonMask;
    fn bitor(self, rhs: Self) -> Self::Output {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for PoisonMask {
    fn bitor_assign(&mut self, rhs: Self) {
        *self = self.union(rhs);
    }
}

/// Assigns poison bits to outstanding misses.
///
/// With `width == 1` every miss maps to the same bit (the classic single
/// poison bit).  With larger widths, bits are assigned round-robin per MSHR,
/// and misses sharing an MSHR (same cache line) share a bit, exactly as
/// Section 3.4 prescribes ("Load misses to the same MSHR are allocated the
/// same bit ... a simple round-robin scheme is sufficient").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoisonAllocator {
    width: u8,
    next: u8,
    /// Recent MSHR→bit assignments (bounded; old entries are recycled).
    assignments: Vec<(MshrId, u8)>,
}

impl PoisonAllocator {
    /// Creates an allocator for poison vectors of `width` bits (1–16).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 16.
    pub fn new(width: u8) -> Self {
        assert!((1..=16).contains(&width), "poison width must be 1..=16");
        PoisonAllocator {
            width,
            next: 0,
            assignments: Vec::new(),
        }
    }

    /// The configured vector width.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Returns the poison bit for a miss held by `mshr`, allocating one
    /// round-robin if this MSHR has not been seen before.
    pub fn bit_for(&mut self, mshr: MshrId) -> PoisonMask {
        if let Some(&(_, b)) = self.assignments.iter().find(|(id, _)| *id == mshr) {
            return PoisonMask::bit(b);
        }
        let b = self.next % self.width;
        self.next = (self.next + 1) % self.width;
        if self.assignments.len() >= 4 * self.width as usize {
            self.assignments.remove(0);
        }
        self.assignments.push((mshr, b));
        PoisonMask::bit(b)
    }

    /// The poison bit previously assigned to `mshr`, if any — used when a miss
    /// returns to know which bit is being un-poisoned.
    pub fn lookup(&self, mshr: MshrId) -> Option<PoisonMask> {
        self.assignments
            .iter()
            .find(|(id, _)| *id == mshr)
            .map(|&(_, b)| PoisonMask::bit(b))
    }

    /// Forgets the assignment for `mshr` (after its rally pass completes).
    pub fn release(&mut self, mshr: MshrId) {
        self.assignments.retain(|(id, _)| *id != mshr);
    }

    /// Clears all assignments (end of an advance/rally episode).
    pub fn clear(&mut self) {
        self.assignments.clear();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mask_properties() {
        let c = PoisonMask::CLEAN;
        assert!(c.is_clean());
        assert!(!c.is_poisoned());
        assert_eq!(c.count(), 0);
        assert_eq!(c.to_string(), "clean");
    }

    #[test]
    fn union_and_without() {
        let a = PoisonMask::bit(0);
        let b = PoisonMask::bit(3);
        let u = a | b;
        assert_eq!(u.count(), 2);
        assert!(u.intersects(a));
        assert!(u.intersects(b));
        assert_eq!(u.without(a), b);
        assert_eq!(u.without(u), PoisonMask::CLEAN);
    }

    #[test]
    fn bitor_assign_accumulates() {
        let mut m = PoisonMask::CLEAN;
        m |= PoisonMask::bit(1);
        m |= PoisonMask::bit(2);
        assert_eq!(m.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = PoisonMask::bit(16);
    }

    #[test]
    fn single_bit_allocator_always_returns_bit_zero() {
        let mut a = PoisonAllocator::new(1);
        assert_eq!(a.bit_for(MshrId(0)), PoisonMask::bit(0));
        assert_eq!(a.bit_for(MshrId(1)), PoisonMask::bit(0));
        assert_eq!(a.bit_for(MshrId(2)), PoisonMask::bit(0));
    }

    #[test]
    fn same_mshr_gets_same_bit() {
        let mut a = PoisonAllocator::new(8);
        let b0 = a.bit_for(MshrId(7));
        let b1 = a.bit_for(MshrId(8));
        assert_ne!(b0, b1);
        assert_eq!(a.bit_for(MshrId(7)), b0);
        assert_eq!(a.lookup(MshrId(8)), Some(b1));
    }

    #[test]
    fn round_robin_wraps() {
        let mut a = PoisonAllocator::new(2);
        let b0 = a.bit_for(MshrId(0));
        let b1 = a.bit_for(MshrId(1));
        let b2 = a.bit_for(MshrId(2));
        assert_eq!(b0, b2);
        assert_ne!(b0, b1);
    }

    #[test]
    fn release_and_clear() {
        let mut a = PoisonAllocator::new(4);
        a.bit_for(MshrId(1));
        a.release(MshrId(1));
        assert_eq!(a.lookup(MshrId(1)), None);
        a.bit_for(MshrId(2));
        a.clear();
        assert_eq!(a.lookup(MshrId(2)), None);
    }

    #[test]
    #[should_panic(expected = "poison width")]
    fn zero_width_panics() {
        let _ = PoisonAllocator::new(0);
    }
}
