//! Miss-status holding registers (MSHRs).
//!
//! The MSHR file tracks outstanding misses at cache-line granularity.  A new
//! miss to a line that already has an MSHR merges into it (a *secondary
//! reference*); a miss when all MSHRs are occupied must stall.  The iCFP core
//! also uses MSHR identities to assign poison-vector bits (Section 3.4 of the
//! paper: "Load misses to the same MSHR (i.e., cache line) are allocated the
//! same bit").

use icfp_isa::{Addr, Cycle};
use serde::{Deserialize, Serialize};

/// Identifier of an allocated MSHR entry.
///
/// The low [`MshrId::SLOT_BITS`] bits encode the *slot* the entry occupies in
/// the MSHR file; the remaining bits are a monotonically increasing
/// generation, so ids are never confused even after a slot is recycled.  The
/// slot encoding lets consumers (the memory hierarchy's per-miss outcome
/// table, poison allocators, ...) key flat fixed-size arrays by MSHR instead
/// of hash maps — the id *is* the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MshrId(pub u64);

impl MshrId {
    /// Number of low bits that encode the slot index (supports files of up to
    /// 65 536 entries — far above any realistic configuration).
    pub const SLOT_BITS: u32 = 16;

    /// The slot this entry occupies in its MSHR file.  Stable for the
    /// lifetime of the entry; reused (with a new generation) after retirement.
    pub fn slot(self) -> usize {
        (self.0 & ((1 << Self::SLOT_BITS) - 1)) as usize
    }

    /// The allocation generation (increases monotonically across a run).
    pub fn generation(self) -> u64 {
        self.0 >> Self::SLOT_BITS
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct MshrEntry {
    id: MshrId,
    line_addr: Addr,
    allocated_at: Cycle,
    completes_at: Cycle,
    /// Number of references merged into this miss (primary + secondaries).
    references: u32,
    /// Whether this miss was initiated by a prefetch rather than a demand access.
    prefetch: bool,
}

/// Statistics for the MSHR file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MshrStats {
    /// Primary (newly allocated) misses.
    pub allocations: u64,
    /// Secondary references merged into an existing MSHR.
    pub merges: u64,
    /// Occasions on which allocation failed because the file was full.
    pub full_stalls: u64,
}

/// A finite file of MSHRs with merge-on-same-line semantics.
///
/// Storage is *slot-indexed*: entry `k` lives in `slots[k]` for its entire
/// lifetime and its [`MshrId`] encodes `k`, so completion updates and
/// per-miss side tables are O(1) array accesses.  Lookups by line address
/// scan the (small, fixed) slot array, which is cache-friendly and
/// allocation-free.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MshrFile {
    slots: Vec<Option<MshrEntry>>,
    outstanding: usize,
    next_gen: u64,
    stats: MshrStats,
}

/// Result of requesting an MSHR for a missing line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrRequest {
    /// A new MSHR was allocated for this line.
    Allocated(MshrId),
    /// The line already had an outstanding miss; the request merged into it
    /// and will complete when that miss completes.
    Merged {
        /// The existing MSHR.
        id: MshrId,
        /// Completion cycle of the existing miss.
        completes_at: Cycle,
    },
    /// No MSHR is free; the earliest cycle at which one frees is given.
    Full {
        /// Cycle at which the earliest outstanding miss completes.
        retry_at: Cycle,
    },
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity < (1 << MshrId::SLOT_BITS),
            "MSHR capacity exceeds slot encoding"
        );
        MshrFile {
            slots: vec![None; capacity],
            outstanding: 0,
            next_gen: 0,
            stats: MshrStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MshrStats {
        &self.stats
    }

    /// Number of slots (the configured capacity).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently outstanding misses.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True if no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.outstanding == 0
    }

    /// Retires every entry whose miss has completed by `now`.
    pub fn retire_completed(&mut self, now: Cycle) {
        for s in &mut self.slots {
            if matches!(s, Some(e) if e.completes_at <= now) {
                *s = None;
                self.outstanding -= 1;
            }
        }
    }

    /// Looks up an outstanding miss covering `line_addr`.
    pub fn lookup(&self, line_addr: Addr) -> Option<(MshrId, Cycle)> {
        self.slots
            .iter()
            .flatten()
            .find(|e| e.line_addr == line_addr)
            .map(|e| (e.id, e.completes_at))
    }

    /// Requests an MSHR for a miss to `line_addr` observed at `now`.
    ///
    /// The caller must call [`MshrFile::set_completion`] after an
    /// `Allocated` result once it has scheduled the memory access and knows
    /// the completion cycle.
    pub fn request(&mut self, line_addr: Addr, now: Cycle, prefetch: bool) -> MshrRequest {
        self.retire_completed(now);
        let mut free = None;
        for (k, s) in self.slots.iter_mut().enumerate() {
            match s {
                Some(e) if e.line_addr == line_addr => {
                    e.references += 1;
                    // A demand reference upgrades a prefetch-initiated miss.
                    if !prefetch {
                        e.prefetch = false;
                    }
                    self.stats.merges += 1;
                    return MshrRequest::Merged {
                        id: e.id,
                        completes_at: e.completes_at,
                    };
                }
                None if free.is_none() => free = Some(k),
                _ => {}
            }
        }
        let Some(slot) = free else {
            self.stats.full_stalls += 1;
            let retry_at = self
                .slots
                .iter()
                .flatten()
                .map(|e| e.completes_at)
                .min()
                .unwrap_or(now + 1);
            return MshrRequest::Full { retry_at };
        };
        let id = MshrId((self.next_gen << MshrId::SLOT_BITS) | slot as u64);
        self.next_gen += 1;
        self.stats.allocations += 1;
        self.slots[slot] = Some(MshrEntry {
            id,
            line_addr,
            allocated_at: now,
            completes_at: Cycle::MAX,
            references: 1,
            prefetch,
        });
        self.outstanding += 1;
        MshrRequest::Allocated(id)
    }

    /// Records the completion cycle of a previously allocated miss.  O(1):
    /// the id's slot encoding indexes the file directly.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to an outstanding MSHR.
    pub fn set_completion(&mut self, id: MshrId, completes_at: Cycle) {
        let e = self.slots[id.slot()]
            .as_mut()
            .filter(|e| e.id == id)
            .expect("set_completion on unknown MSHR");
        e.completes_at = completes_at;
    }

    /// Iterates over `(line_addr, completes_at, id)` of outstanding misses.
    pub fn iter_outstanding(&self) -> impl Iterator<Item = (Addr, Cycle, MshrId)> + '_ {
        self.slots
            .iter()
            .flatten()
            .map(|e| (e.line_addr, e.completes_at, e.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_and_retire() {
        let mut f = MshrFile::new(2);
        let id = match f.request(0x1000, 0, false) {
            MshrRequest::Allocated(id) => id,
            other => panic!("expected allocation, got {other:?}"),
        };
        f.set_completion(id, 100);
        match f.request(0x1000, 5, false) {
            MshrRequest::Merged { id: mid, completes_at } => {
                assert_eq!(mid, id);
                assert_eq!(completes_at, 100);
            }
            other => panic!("expected merge, got {other:?}"),
        }
        assert_eq!(f.outstanding(), 1);
        f.retire_completed(100);
        assert_eq!(f.outstanding(), 0);
        assert_eq!(f.stats().allocations, 1);
        assert_eq!(f.stats().merges, 1);
    }

    #[test]
    fn full_file_reports_retry_time() {
        let mut f = MshrFile::new(1);
        let id = match f.request(0x1000, 0, false) {
            MshrRequest::Allocated(id) => id,
            _ => unreachable!(),
        };
        f.set_completion(id, 50);
        match f.request(0x2000, 1, false) {
            MshrRequest::Full { retry_at } => assert_eq!(retry_at, 50),
            other => panic!("expected full, got {other:?}"),
        }
        assert_eq!(f.stats().full_stalls, 1);
        // After completion, allocation succeeds again.
        assert!(matches!(
            f.request(0x2000, 51, false),
            MshrRequest::Allocated(_)
        ));
    }

    #[test]
    fn different_lines_get_different_mshrs() {
        let mut f = MshrFile::new(4);
        let a = f.request(0x1000, 0, false);
        let b = f.request(0x2000, 0, false);
        match (a, b) {
            (MshrRequest::Allocated(x), MshrRequest::Allocated(y)) => assert_ne!(x, y),
            other => panic!("expected two allocations, got {other:?}"),
        }
    }

    #[test]
    fn demand_upgrades_prefetch() {
        let mut f = MshrFile::new(2);
        let id = match f.request(0x1000, 0, true) {
            MshrRequest::Allocated(id) => id,
            _ => unreachable!(),
        };
        f.set_completion(id, 100);
        // A demand merge should succeed and keep the same completion.
        match f.request(0x1000, 1, false) {
            MshrRequest::Merged { completes_at, .. } => assert_eq!(completes_at, 100),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ids_are_unique_across_reuse() {
        let mut f = MshrFile::new(1);
        let a = match f.request(0x1000, 0, false) {
            MshrRequest::Allocated(id) => id,
            _ => unreachable!(),
        };
        f.set_completion(a, 10);
        f.retire_completed(10);
        let b = match f.request(0x3000, 11, false) {
            MshrRequest::Allocated(id) => id,
            _ => unreachable!(),
        };
        assert_ne!(a, b);
    }
}
