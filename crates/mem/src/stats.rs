//! Memory-system statistics, including the MLP (memory-level parallelism)
//! accounting the paper reports in Table 2.

use icfp_isa::Cycle;
use serde::{Deserialize, Serialize};

/// Tracks memory-level parallelism as the average number of overlapping
/// outstanding misses, measured only over cycles during which at least one
/// miss is outstanding — the standard definition and the one Table 2 of the
/// paper uses ("D$ MLP" / "L2 MLP").
///
/// Miss intervals must be reported in non-decreasing order of start cycle,
/// which is naturally the case when misses are recorded as the simulation
/// advances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MlpTracker {
    /// Sum of the lengths of all miss intervals (miss-cycles).
    miss_cycles: u64,
    /// Number of cycles during which at least one miss was outstanding
    /// (the union of the intervals).
    busy_cycles: u64,
    /// End of the union coverage so far.
    covered_until: Cycle,
    /// Number of misses recorded.
    misses: u64,
}

impl MlpTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a miss outstanding over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `end < start`.
    pub fn record(&mut self, start: Cycle, end: Cycle) {
        debug_assert!(end >= start, "miss interval ends before it starts");
        if end <= start {
            return;
        }
        self.misses += 1;
        self.miss_cycles += end - start;
        if start >= self.covered_until {
            self.busy_cycles += end - start;
            self.covered_until = end;
        } else if end > self.covered_until {
            self.busy_cycles += end - self.covered_until;
            self.covered_until = end;
        }
    }

    /// Number of misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total cycles during which at least one miss was outstanding.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The measured MLP: average overlapping misses over busy cycles.
    /// Returns 1.0 when no misses were recorded (so ratios stay meaningful).
    pub fn mlp(&self) -> f64 {
        if self.busy_cycles == 0 {
            1.0
        } else {
            self.miss_cycles as f64 / self.busy_cycles as f64
        }
    }
}

/// Aggregate memory-hierarchy statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand loads issued to the hierarchy.
    pub loads: u64,
    /// Demand stores issued to the hierarchy.
    pub stores: u64,
    /// Demand accesses that missed in the L1 data cache.
    pub l1d_misses: u64,
    /// Demand accesses that missed in the L2.
    pub l2_misses: u64,
    /// Demand accesses serviced by a stream buffer.
    pub prefetch_hits: u64,
    /// Prefetch requests sent to memory.
    pub prefetches_issued: u64,
    /// MLP accounting for L1 data-cache misses.
    pub l1d_mlp: MlpTracker,
    /// MLP accounting for L2 misses.
    pub l2_mlp: MlpTracker,
}

impl MemStats {
    /// L1 data-cache misses per 1000 demand accesses... per 1000 *instructions*
    /// requires the instruction count, which the caller supplies.
    pub fn l1d_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.l1d_misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// L2 misses per 1000 instructions.
    pub fn l2_mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.l2_misses as f64 * 1000.0 / instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_misses_reports_unit_mlp() {
        let t = MlpTracker::new();
        assert_eq!(t.mlp(), 1.0);
        assert_eq!(t.misses(), 0);
    }

    #[test]
    fn serial_misses_have_mlp_one() {
        let mut t = MlpTracker::new();
        t.record(0, 100);
        t.record(100, 200);
        t.record(300, 400);
        assert!((t.mlp() - 1.0).abs() < 1e-12);
        assert_eq!(t.busy_cycles(), 300);
    }

    #[test]
    fn fully_overlapping_misses_add_up() {
        let mut t = MlpTracker::new();
        t.record(0, 100);
        t.record(0, 100);
        t.record(0, 100);
        assert!((t.mlp() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        let mut t = MlpTracker::new();
        t.record(0, 100);
        t.record(50, 150);
        // miss cycles 200, busy 150 → 1.333…
        assert!((t.mlp() - 200.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_interval_is_ignored() {
        let mut t = MlpTracker::new();
        t.record(10, 10);
        assert_eq!(t.misses(), 0);
        assert_eq!(t.mlp(), 1.0);
    }

    #[test]
    fn mpki_helpers() {
        let s = MemStats {
            l1d_misses: 23,
            l2_misses: 5,
            ..MemStats::default()
        };
        assert!((s.l1d_mpki(1000) - 23.0).abs() < 1e-12);
        assert!((s.l2_mpki(1000) - 5.0).abs() < 1e-12);
        assert_eq!(s.l1d_mpki(0), 0.0);
    }
}
