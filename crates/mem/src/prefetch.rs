//! Hardware stream-buffer prefetcher.
//!
//! The paper's baseline includes "8 stream buffers with 8 128-byte blocks
//! each" (Table 1) — an important detail, because all reported speedups are
//! *on top of* stream prefetching.  Each stream buffer follows a sequential
//! stream of L2-line-sized blocks.  A demand miss that hits in a stream buffer
//! is serviced from it (at the block's arrival time) and the stream runs
//! ahead by one more block; a demand miss that hits no buffer allocates a new
//! stream (round-robin over the buffers) starting at the next sequential
//! block.

use icfp_isa::{Addr, Cycle};
use serde::{Deserialize, Serialize};

/// A prefetch request the hierarchy should issue on behalf of the prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Block-aligned address to prefetch.
    pub block_addr: Addr,
    /// Which stream buffer the block belongs to.
    pub buffer: usize,
}

/// Statistics for the prefetcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Demand misses that were serviced by a stream buffer.
    pub hits: u64,
    /// Streams (re)allocated.
    pub allocations: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StreamBuffer {
    /// Blocks currently held / in flight: (block address, ready cycle).
    blocks: Vec<(Addr, Cycle)>,
    /// Block address the stream was trained on (its low end).
    stream_base: Addr,
    /// Next block address this stream will prefetch.
    next_block: Addr,
    /// Cycle of last use, for round-robin-with-LRU allocation.
    last_use: Cycle,
    /// Whether this buffer holds an active stream.
    active: bool,
}

impl StreamBuffer {
    fn empty() -> Self {
        StreamBuffer {
            blocks: Vec::new(),
            stream_base: 0,
            next_block: 0,
            last_use: 0,
            active: false,
        }
    }
}

/// The stream-buffer prefetch engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamPrefetcher {
    buffers: Vec<StreamBuffer>,
    depth: usize,
    block_bytes: u64,
    stats: PrefetchStats,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with `num_buffers` stream buffers, each holding up
    /// to `depth` blocks of `block_bytes` bytes.
    pub fn new(num_buffers: usize, depth: usize, block_bytes: u64) -> Self {
        StreamPrefetcher {
            buffers: (0..num_buffers).map(|_| StreamBuffer::empty()).collect(),
            depth,
            block_bytes,
            stats: PrefetchStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Block-aligned address for this prefetcher's block size.
    pub fn block_addr(&self, addr: Addr) -> Addr {
        addr & !(self.block_bytes - 1)
    }

    /// Probes the stream buffers for `addr`.  On a hit, the block is consumed,
    /// its arrival cycle is returned, and the stream is extended by one block
    /// (returned as a new prefetch request).
    pub fn probe(
        &mut self,
        addr: Addr,
        now: Cycle,
    ) -> (Option<Cycle>, Option<PrefetchRequest>) {
        let block = self.block_addr(addr);
        for (bi, buf) in self.buffers.iter_mut().enumerate() {
            if !buf.active {
                continue;
            }
            if let Some(pos) = buf.blocks.iter().position(|&(a, _)| a == block) {
                let (_, ready) = buf.blocks.remove(pos);
                buf.last_use = now;
                self.stats.hits += 1;
                // Keep the stream running ahead.
                let req = if buf.blocks.len() < self.depth {
                    let next = buf.next_block;
                    buf.next_block = next.wrapping_add(self.block_bytes);
                    self.stats.issued += 1;
                    Some(PrefetchRequest {
                        block_addr: next,
                        buffer: bi,
                    })
                } else {
                    None
                };
                return (Some(ready.max(now)), req);
            }
        }
        (None, None)
    }

    /// Notifies the prefetcher of a demand miss that no stream buffer covered.
    /// Allocates (or re-targets) a stream buffer starting at the next
    /// sequential block and returns the initial burst of prefetch requests.
    pub fn on_demand_miss(&mut self, addr: Addr, now: Cycle) -> Vec<PrefetchRequest> {
        if self.buffers.is_empty() {
            return Vec::new();
        }
        let block = self.block_addr(addr);
        // Don't steal a buffer that is already streaming over this address:
        // the missing block lies within the span some active stream covers.
        let next = block.wrapping_add(self.block_bytes);
        if self.buffers.iter().any(|b| {
            b.active
                && (b.next_block == next
                    || (block >= b.stream_base && next <= b.next_block)
                    || b.blocks.iter().any(|&(a, _)| a == next))
        }) {
            return Vec::new();
        }
        // Choose the least-recently-used buffer (inactive buffers first).
        let victim = self
            .buffers
            .iter()
            .enumerate()
            .min_by_key(|(_, b)| (b.active, b.last_use))
            .map(|(i, _)| i)
            .expect("at least one buffer");
        let buf = &mut self.buffers[victim];
        buf.active = true;
        buf.blocks.clear();
        buf.last_use = now;
        buf.stream_base = block;
        buf.next_block = block.wrapping_add(self.block_bytes);
        self.stats.allocations += 1;
        let mut reqs = Vec::with_capacity(self.depth);
        for _ in 0..self.depth {
            let a = buf.next_block;
            buf.next_block = a.wrapping_add(self.block_bytes);
            self.stats.issued += 1;
            reqs.push(PrefetchRequest {
                block_addr: a,
                buffer: victim,
            });
        }
        reqs
    }

    /// Records that a previously requested prefetch block will arrive at
    /// `ready_at`.  Blocks beyond the buffer's depth are dropped.
    pub fn record_arrival(&mut self, req: PrefetchRequest, ready_at: Cycle) {
        if let Some(buf) = self.buffers.get_mut(req.buffer) {
            if buf.active && buf.blocks.len() < self.depth {
                buf.blocks.push((req.block_addr, ready_at));
            }
        }
    }

    /// Records that a previously generated prefetch request was refused (the
    /// bus dropped it).  The stream rolls its high-water mark back to the
    /// dropped block so a later extension re-requests it, instead of leaving
    /// a permanent hole the stream believes it has covered.
    pub fn record_drop(&mut self, req: PrefetchRequest) {
        if let Some(buf) = self.buffers.get_mut(req.buffer) {
            if buf.active {
                buf.next_block = buf.next_block.min(req.block_addr);
            }
        }
    }

    /// Number of blocks currently held or in flight across all buffers.
    pub fn blocks_in_flight(&self) -> usize {
        self.buffers.iter().map(|b| b.blocks.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(2, 4, 128)
    }

    #[test]
    fn miss_allocates_stream_of_depth_blocks() {
        let mut p = pf();
        let reqs = p.on_demand_miss(0x1000, 0);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].block_addr, 0x1080);
        assert_eq!(reqs[3].block_addr, 0x1200);
        assert_eq!(p.stats().allocations, 1);
        assert_eq!(p.stats().issued, 4);
    }

    #[test]
    fn probe_hit_consumes_block_and_extends_stream() {
        let mut p = pf();
        let reqs = p.on_demand_miss(0x1000, 0);
        for r in &reqs {
            p.record_arrival(*r, 500);
        }
        assert_eq!(p.blocks_in_flight(), 4);
        let (hit, extend) = p.probe(0x1080, 600);
        assert_eq!(hit, Some(600)); // arrived at 500, probed at 600
        let ext = extend.expect("stream should extend");
        assert_eq!(ext.block_addr, 0x1280);
        assert_eq!(p.blocks_in_flight(), 3);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn probe_before_arrival_returns_arrival_time() {
        let mut p = pf();
        let reqs = p.on_demand_miss(0x1000, 0);
        p.record_arrival(reqs[0], 500);
        let (hit, _) = p.probe(0x1080, 100);
        assert_eq!(hit, Some(500));
    }

    #[test]
    fn dropped_request_rolls_the_stream_back() {
        let mut p = pf();
        let reqs = p.on_demand_miss(0x1000, 0); // 0x1080, 0x1100, 0x1180, 0x1200
        p.record_arrival(reqs[0], 500);
        p.record_drop(reqs[1]); // bus refused 0x1100
        // Consuming a buffered block extends the stream from the dropped
        // block, not from beyond the hole.
        let (hit, ext) = p.probe(0x1080, 600);
        assert!(hit.is_some());
        assert_eq!(ext.expect("stream should extend").block_addr, 0x1100);
    }

    #[test]
    fn unrelated_address_misses_all_buffers() {
        let mut p = pf();
        let reqs = p.on_demand_miss(0x1000, 0);
        for r in &reqs {
            p.record_arrival(*r, 10);
        }
        let (hit, ext) = p.probe(0x9000, 20);
        assert!(hit.is_none());
        assert!(ext.is_none());
    }

    #[test]
    fn repeated_miss_in_same_stream_does_not_thrash() {
        let mut p = pf();
        p.on_demand_miss(0x1000, 0);
        // Miss to the block the existing stream is about to cover must not
        // re-allocate a buffer.
        let reqs = p.on_demand_miss(0x1000, 1);
        assert!(reqs.is_empty());
        assert_eq!(p.stats().allocations, 1);
    }

    #[test]
    fn zero_buffers_is_a_no_op() {
        let mut p = StreamPrefetcher::new(0, 4, 128);
        assert!(p.on_demand_miss(0x1000, 0).is_empty());
        assert_eq!(p.probe(0x1000, 0), (None, None));
    }
}
