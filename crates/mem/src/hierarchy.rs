//! The two-level memory hierarchy used by every core model.

use crate::bus::MemoryBus;
use crate::cache::{Cache, ProbeResult};
use crate::config::MemConfig;
use crate::mshr::{MshrFile, MshrId, MshrRequest};
use crate::prefetch::StreamPrefetcher;
use crate::stats::MemStats;
use icfp_isa::{Addr, Cycle};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a demand access was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// Hit in the L1 data cache (including hits under a pending fill).
    L1Hit,
    /// Serviced by a hardware stream buffer.
    PrefetchHit,
    /// Missed L1, hit in the L2.
    L1MissL2Hit,
    /// Missed both L1 and L2; serviced from memory.
    L2Miss,
}

impl AccessOutcome {
    /// True if the access missed the L1 data cache (including prefetch-buffer
    /// services, which the paper does not count as data-cache hits).
    pub fn is_l1_miss(self) -> bool {
        !matches!(self, AccessOutcome::L1Hit)
    }

    /// True if the access had to go to main memory.
    pub fn is_l2_miss(self) -> bool {
        matches!(self, AccessOutcome::L2Miss)
    }
}

impl fmt::Display for AccessOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessOutcome::L1Hit => "L1 hit",
            AccessOutcome::PrefetchHit => "prefetch hit",
            AccessOutcome::L1MissL2Hit => "L2 hit",
            AccessOutcome::L2Miss => "L2 miss",
        };
        write!(f, "{s}")
    }
}

/// Response to a demand load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadResponse {
    /// Cycle at which the loaded data is available to dependents.
    pub completes_at: Cycle,
    /// How the access was serviced.
    pub outcome: AccessOutcome,
    /// The MSHR tracking the miss, if the access is waiting on one.  Used by
    /// iCFP to assign poison-vector bits (paper Section 3.4).
    pub mshr: Option<MshrId>,
}

/// Response to a demand store (issued when the store drains from a store
/// buffer to the cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreResponse {
    /// Cycle at which the store is globally performed.
    pub completes_at: Cycle,
    /// How the access was serviced.
    pub outcome: AccessOutcome,
}

/// Errors returned by the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// All MSHRs are occupied; retry at (or after) the given cycle.
    MshrFull {
        /// Earliest cycle at which an MSHR frees.
        retry_at: Cycle,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::MshrFull { retry_at } => {
                write!(f, "all miss-status registers occupied until cycle {retry_at}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// The simulated memory hierarchy: L1 data cache, unified L2, MSHRs, memory
/// bus/DRAM and stream prefetchers.  See the crate-level documentation for the
/// timing model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    config: MemConfig,
    l1d: Cache,
    l2: Cache,
    mshrs: MshrFile,
    bus: MemoryBus,
    prefetcher: StreamPrefetcher,
    stats: MemStats,
    /// Outcome of the primary miss held by each outstanding MSHR, so merged
    /// references can report the same outcome.  Slot-indexed flat table keyed
    /// by [`MshrId::slot`]; the stored id guards against stale generations.
    /// Fixed-size, so the per-access hot path performs no heap allocation and
    /// no hashing.
    mshr_outcome: Vec<Option<(MshrId, AccessOutcome)>>,
}

impl MemoryHierarchy {
    /// Creates a hierarchy with cold caches.
    pub fn new(config: MemConfig) -> Self {
        let bus = MemoryBus::new(
            config.mem_latency,
            config.mem_chunk_latency,
            config.l2.line_bytes,
            config.mem_chunk_bytes,
            config.bus_line_interval,
        );
        let prefetcher = StreamPrefetcher::new(
            if config.prefetch_enabled {
                config.stream_buffers
            } else {
                0
            },
            config.stream_buffer_blocks,
            config.l2.line_bytes,
        );
        MemoryHierarchy {
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            mshrs: MshrFile::new(config.max_outstanding_misses),
            bus,
            prefetcher,
            stats: MemStats::default(),
            mshr_outcome: vec![None; config.max_outstanding_misses],
            config,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Statistics of the L1 data cache.
    pub fn l1d_stats(&self) -> &crate::cache::CacheStats {
        self.l1d.stats()
    }

    /// Statistics of the L2 cache.
    pub fn l2_stats(&self) -> &crate::cache::CacheStats {
        self.l2.stats()
    }

    /// Number of misses currently outstanding.
    pub fn outstanding_misses(&self, now: Cycle) -> usize {
        self.mshrs
            .iter_outstanding()
            .filter(|&(_, c, _)| c > now)
            .count()
    }

    /// Issues a demand load for `addr` at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::MshrFull`] if the access misses and no MSHR is
    /// available; the caller should retry at the indicated cycle.
    pub fn load(&mut self, addr: Addr, now: Cycle) -> Result<LoadResponse, MemError> {
        self.stats.loads += 1;
        self.access(addr, now, false).map(|(completes_at, outcome, mshr)| LoadResponse {
            completes_at,
            outcome,
            mshr,
        })
    }

    /// Issues a demand store for `addr` at cycle `now` (typically called when
    /// the store drains from a store buffer).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::MshrFull`] if the access misses and no MSHR is
    /// available.
    pub fn store(&mut self, addr: Addr, now: Cycle) -> Result<StoreResponse, MemError> {
        self.stats.stores += 1;
        self.access(addr, now, true)
            .map(|(completes_at, outcome, _)| StoreResponse {
                completes_at,
                outcome,
            })
    }

    /// Non-destructive classification of how a load to `addr` would be
    /// serviced right now.  Does not update replacement state, statistics,
    /// MSHRs or prefetch streams.  Used by diagnostics and tests.
    pub fn classify(&self, addr: Addr) -> AccessOutcome {
        if self.l1d.peek(addr) {
            AccessOutcome::L1Hit
        } else if self.l2.peek(addr) {
            AccessOutcome::L1MissL2Hit
        } else {
            AccessOutcome::L2Miss
        }
    }

    /// Invalidates `addr` from both cache levels (external store / coherence
    /// action).  Returns true if any level held the line.
    pub fn external_invalidate(&mut self, addr: Addr) -> bool {
        let a = self.l1d.invalidate(addr);
        let b = self.l2.invalidate(addr);
        a || b
    }

    /// Invalidates `addr` from the L1 only (used by SLTP's speculative-line
    /// flush before a rally).
    pub fn invalidate_l1(&mut self, addr: Addr) -> bool {
        self.l1d.invalidate(addr)
    }

    fn access(
        &mut self,
        addr: Addr,
        now: Cycle,
        is_write: bool,
    ) -> Result<(Cycle, AccessOutcome, Option<MshrId>), MemError> {
        let l1_lat = self.config.l1_hit_latency;
        self.mshrs.retire_completed(now);

        // 1. L1 probe.
        if let ProbeResult::Hit { ready_at } = self.l1d.access(addr, now, is_write) {
            let completes = ready_at.max(now + l1_lat);
            // If the line is still being filled there is an MSHR for it.
            let mshr = self.mshrs.lookup(self.l1d.line_addr(addr)).map(|(id, _)| id);
            return Ok((completes, AccessOutcome::L1Hit, mshr));
        }

        // 2. Stream-buffer probe.
        let (pf_hit, pf_extend) = self.prefetcher.probe(addr, now);
        if let Some(ready) = pf_hit {
            self.stats.prefetch_hits += 1;
            let completes = ready.max(now + l1_lat);
            self.l1d.fill(addr, now, completes, is_write);
            if let Some(req) = pf_extend {
                self.issue_prefetch(req, now);
            }
            return Ok((completes, AccessOutcome::PrefetchHit, None));
        }

        // 3. True L1 miss: take an MSHR.
        let l1_line = self.l1d.line_addr(addr);
        let mshr_id = match self.mshrs.request(l1_line, now, false) {
            MshrRequest::Merged { id, completes_at } => {
                let outcome = match self.mshr_outcome[id.slot()] {
                    Some((owner, o)) if owner == id => o,
                    _ => AccessOutcome::L1MissL2Hit,
                };
                if is_write {
                    // Mark the line dirty once it arrives.
                    self.l1d.fill(addr, now, completes_at, true);
                }
                return Ok((completes_at.max(now + l1_lat), outcome, Some(id)));
            }
            MshrRequest::Full { retry_at } => return Err(MemError::MshrFull { retry_at }),
            MshrRequest::Allocated(id) => id,
        };
        self.stats.l1d_misses += 1;

        // 4. L2 probe.
        let (completes, outcome) = match self.l2.access(addr, now, false) {
            ProbeResult::Hit { ready_at } => {
                let completes = (now + l1_lat + self.config.l2_hit_latency).max(ready_at);
                (completes, AccessOutcome::L1MissL2Hit)
            }
            ProbeResult::Miss => {
                // 5. Memory access via the bus.
                self.stats.l2_misses += 1;
                let transfer = self.bus.schedule(now + self.config.l2_hit_latency);
                let completes = transfer.critical_chunk_at + l1_lat;
                self.l2
                    .fill(addr, now, transfer.line_complete_at, false);
                self.stats.l2_mlp.record(now, completes);
                (completes, AccessOutcome::L2Miss)
            }
        };
        self.stats.l1d_mlp.record(now, completes);
        self.l1d.fill(addr, now, completes, is_write);
        self.mshrs.set_completion(mshr_id, completes);
        // Slot reuse overwrites stale generations; no pruning pass needed.
        self.mshr_outcome[mshr_id.slot()] = Some((mshr_id, outcome));

        // 6. Train the stream prefetcher on the demand miss.
        let reqs = self.prefetcher.on_demand_miss(addr, now);
        for req in reqs {
            self.issue_prefetch(req, now);
        }

        Ok((completes, outcome, Some(mshr_id)))
    }

    fn issue_prefetch(&mut self, req: crate::prefetch::PrefetchRequest, now: Cycle) {
        // Prefetches that already hit on-chip are free; only memory-bound
        // prefetches consume bus bandwidth — and only *spare* bandwidth: a
        // prefetch the bus cannot accept promptly is dropped, never queued
        // ahead of future demand misses.
        let arrival = if self.l1d.peek(req.block_addr) {
            now
        } else if self.l2.peek(req.block_addr) {
            now + self.config.l2_hit_latency
        } else {
            let Some(t) = self.bus.schedule_prefetch(now + self.config.l2_hit_latency) else {
                // Dropped: roll the stream back so the block is re-requested
                // later instead of becoming a permanent hole.
                self.prefetcher.record_drop(req);
                return;
            };
            self.stats.prefetches_issued += 1;
            // Prefetched lines are installed in the L2 as well, modelling the
            // common install-on-prefetch policy.
            self.l2.fill(req.block_addr, now, t.line_complete_at, false);
            t.line_complete_at
        };
        self.prefetcher.record_arrival(req, arrival);
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(MemConfig::paper_default().with_prefetch(false))
    }

    #[test]
    fn cold_load_is_an_l2_miss_with_memory_latency() {
        let mut m = hier();
        let r = m.load(0x4000, 0).unwrap();
        assert_eq!(r.outcome, AccessOutcome::L2Miss);
        // 20 (L2 lookup) + 400 (memory) + 3 (fill/use) = 423.
        assert_eq!(r.completes_at, 423);
        assert!(r.mshr.is_some());
        assert_eq!(m.stats().l1d_misses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn second_load_to_same_line_merges() {
        let mut m = hier();
        let a = m.load(0x4000, 0).unwrap();
        let b = m.load(0x4008, 1).unwrap();
        assert_eq!(b.completes_at, a.completes_at.max(1 + 3));
        assert_eq!(b.outcome, AccessOutcome::L1Hit); // hit-under-fill on the same L1 line
        assert_eq!(m.stats().l1d_misses, 1, "merged access must not double-count");
    }

    #[test]
    fn load_after_fill_completes_is_an_l1_hit() {
        let mut m = hier();
        let a = m.load(0x4000, 0).unwrap();
        let r = m.load(0x4000, a.completes_at + 10).unwrap();
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
        assert_eq!(r.completes_at, a.completes_at + 10 + 3);
    }

    #[test]
    fn l2_hit_latency_applies_after_l1_eviction() {
        let mut m = hier();
        let a = m.load(0x4000, 0).unwrap();
        let warm = a.completes_at + 1;
        // Evict 0x4000 from L1 by filling many lines mapping to the same set.
        // L1: 32KB/4-way/64B → 128 sets; same set every 128*64 = 8192 bytes.
        let mut t = warm;
        for i in 1..=8u64 {
            let r = m.load(0x4000 + i * 8192, t).unwrap();
            t = r.completes_at + 1;
        }
        let r = m.load(0x4000, t).unwrap();
        // Must not be an L2 miss: the line is still in L2 (and may even hit a
        // victim buffer, in which case it is an L1 hit).
        assert_ne!(r.outcome, AccessOutcome::L2Miss);
    }

    #[test]
    fn different_lines_overlap_in_the_mlp_tracker() {
        let mut m = hier();
        m.load(0x10000, 0).unwrap();
        m.load(0x20000, 1).unwrap();
        m.load(0x30000, 2).unwrap();
        assert!(m.stats().l2_mlp.mlp() > 2.0);
    }

    #[test]
    fn bus_serializes_many_parallel_misses() {
        let mut m = hier();
        let mut completions = Vec::new();
        for i in 0..4u64 {
            completions.push(m.load(0x100000 + i * 0x1000, 0).unwrap().completes_at);
        }
        // Consecutive transfers are spaced by the 32-cycle bus interval.
        assert_eq!(completions[1] - completions[0], 32);
        assert_eq!(completions[3] - completions[0], 96);
    }

    #[test]
    fn mshr_exhaustion_reports_full() {
        let mut m = MemoryHierarchy::new(MemConfig::tiny_for_tests());
        let cap = m.config().max_outstanding_misses;
        for i in 0..cap as u64 {
            m.load(0x10000 + i * 0x1000, 0).unwrap();
        }
        let err = m.load(0xFF0000, 0).unwrap_err();
        match err {
            MemError::MshrFull { retry_at } => assert!(retry_at > 0),
        }
    }

    #[test]
    fn merged_access_reports_primary_outcome_via_flat_slot_table() {
        let mut m = hier();
        let a = m.load(0x4000, 0).unwrap();
        assert_eq!(a.outcome, AccessOutcome::L2Miss);
        let a_id = a.mshr.expect("primary miss holds an MSHR");
        // Thrash the line's L1 set (stride = sets × line bytes = 8192) hard
        // enough to push it out of the array *and* the victim buffer while
        // its fill is still in flight (12 evictions > 4 ways + 8 victims).
        for i in 1..=12u64 {
            m.load(0x4000 + i * 8192, 1).unwrap();
        }
        // Re-access: the line is gone from the L1 but its MSHR is live — the
        // access merges, and the slot-indexed outcome table must report the
        // *primary* miss's outcome and completion, not a default.
        let r = m.load(0x4000, 20).unwrap();
        assert_eq!(r.mshr, Some(a_id));
        assert_eq!(r.outcome, AccessOutcome::L2Miss);
        assert_eq!(r.completes_at, a.completes_at.max(20 + 3));
    }

    #[test]
    fn mshr_slot_recycling_keeps_outcomes_fresh() {
        // One MSHR: every miss reuses slot 0, exercising the generation guard
        // on the flat outcome table.
        let mut m = MemoryHierarchy::new(MemConfig {
            max_outstanding_misses: 1,
            ..MemConfig::paper_default().with_prefetch(false)
        });
        let a = m.load(0x4000, 0).unwrap();
        let a_id = a.mshr.unwrap();
        let b = m.load(0x20000, a.completes_at + 1).unwrap();
        let b_id = b.mshr.unwrap();
        assert_eq!(b_id.slot(), a_id.slot(), "the single slot must be reused");
        assert_ne!(b_id, a_id, "generation must advance on slot reuse");
        assert_eq!(b.outcome, AccessOutcome::L2Miss);
        // A hit-under-fill on the recycled slot's line sees the new owner's
        // completion time and MSHR id, not the stale generation's.
        let r = m.load(0x20000 + 8, a.completes_at + 2).unwrap();
        assert_eq!(r.mshr, Some(b_id));
        assert_eq!(r.completes_at, b.completes_at.max(a.completes_at + 2 + 3));
    }

    #[test]
    fn stores_write_allocate_and_dirty_lines() {
        let mut m = hier();
        let s = m.store(0x4000, 0).unwrap();
        assert_eq!(s.outcome, AccessOutcome::L2Miss);
        let r = m.load(0x4000, s.completes_at + 1).unwrap();
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
    }

    #[test]
    fn prefetcher_catches_streaming_pattern() {
        let mut m = MemoryHierarchy::new(MemConfig::paper_default());
        // Walk sequentially through memory; after the first few misses the
        // stream buffers should start supplying lines.
        let mut now = 0;
        let mut outcomes = Vec::new();
        for i in 0..64u64 {
            let r = m.load(0x100000 + i * 64, now).unwrap();
            outcomes.push(r.outcome);
            now += 4; // keep issuing; do not wait for data
        }
        assert!(
            outcomes.contains(&AccessOutcome::PrefetchHit),
            "expected some prefetch hits on a sequential stream: {outcomes:?}"
        );
    }

    #[test]
    fn external_invalidate_forces_remiss() {
        let mut m = hier();
        let a = m.load(0x4000, 0).unwrap();
        assert!(m.external_invalidate(0x4000));
        let r = m.load(0x4000, a.completes_at + 10).unwrap();
        assert!(r.outcome.is_l1_miss());
    }

    #[test]
    fn classify_is_non_destructive() {
        let m = hier();
        assert_eq!(m.classify(0x4000), AccessOutcome::L2Miss);
        assert_eq!(m.stats().loads, 0);
    }

    #[test]
    fn outcome_helpers() {
        assert!(AccessOutcome::L2Miss.is_l1_miss());
        assert!(AccessOutcome::L2Miss.is_l2_miss());
        assert!(AccessOutcome::L1MissL2Hit.is_l1_miss());
        assert!(!AccessOutcome::L1MissL2Hit.is_l2_miss());
        assert!(!AccessOutcome::L1Hit.is_l1_miss());
        assert!(AccessOutcome::PrefetchHit.is_l1_miss());
    }
}
