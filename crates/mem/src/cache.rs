//! Set-associative cache arrays with LRU replacement and victim buffers.
//!
//! These are *tag/timing* models: no data is stored (functional data lives in
//! `icfp_isa::FunctionalMemory` and in the store buffers).  Each line records
//! the cycle at which its fill completes so that accesses arriving while the
//! fill is still in flight are treated as hits-under-fill (they complete when
//! the fill does), which is how MSHR merging becomes visible to the pipeline.

use icfp_isa::{Addr, Cycle};
use serde::{Deserialize, Serialize};

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Number of entries in the fully-associative victim buffer.
    pub victim_entries: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.assoc as u64)).max(1) as usize
    }

    /// The line-aligned address of the line containing `addr`.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.line_bytes - 1)
    }

    /// The set index for `addr`.
    pub fn set_index(&self, addr: Addr) -> usize {
        ((addr / self.line_bytes) as usize) & (self.num_sets() - 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    tag: Addr, // line-aligned address
    valid: bool,
    dirty: bool,
    last_use: Cycle,
    /// Cycle at which the fill that brought this line in completes.
    ready_at: Cycle,
}

impl Line {
    fn invalid() -> Self {
        Line {
            tag: 0,
            valid: false,
            dirty: false,
            last_use: 0,
            ready_at: 0,
        }
    }
}

/// Result of probing a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The line is present; data is usable at `ready_at` (which may be in the
    /// future if the line's fill is still in flight).
    Hit {
        /// Cycle at which the line's data is available.
        ready_at: Cycle,
    },
    /// The line is absent.
    Miss,
}

/// A line evicted by a fill, handed to the caller (victim buffer / writeback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Line-aligned address of the evicted line.
    pub line_addr: Addr,
    /// Whether the evicted line was dirty.
    pub dirty: bool,
}

/// Per-cache statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses (loads + stores probed against this level).
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Hits supplied by the victim buffer.
    pub victim_hits: u64,
    /// Lines filled into the array.
    pub fills: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate over demand accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A small fully-associative victim buffer.
///
/// Holds recently evicted lines; a probe hit returns the line to the caller
/// (who normally re-fills it into the main array).  Each entry keeps the
/// line's fill-ready cycle: a line evicted while its fill is still in flight
/// must not supply data before that fill would have arrived.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VictimBuffer {
    entries: Vec<(Addr, bool, Cycle)>, // (line address, dirty, data ready at)
    capacity: usize,
}

impl VictimBuffer {
    /// Creates a victim buffer with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        VictimBuffer {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Inserts an evicted line, displacing the oldest entry if full.
    /// Returns the displaced line, if any, so dirty victims can be written back.
    pub fn insert(&mut self, line_addr: Addr, dirty: bool, ready_at: Cycle) -> Option<Evicted> {
        if self.capacity == 0 {
            return Some(Evicted { line_addr, dirty });
        }
        let displaced = if self.entries.len() == self.capacity {
            let (a, d, _) = self.entries.remove(0);
            Some(Evicted {
                line_addr: a,
                dirty: d,
            })
        } else {
            None
        };
        self.entries.push((line_addr, dirty, ready_at));
        displaced
    }

    /// Probes for a line; on a hit the entry is removed and its dirtiness and
    /// data-ready cycle returned (the caller re-fills it into the main array).
    pub fn take(&mut self, line_addr: Addr) -> Option<(bool, Cycle)> {
        if let Some(pos) = self.entries.iter().position(|&(a, _, _)| a == line_addr) {
            let (_, dirty, ready_at) = self.entries.remove(pos);
            Some((dirty, ready_at))
        } else {
            None
        }
    }

    /// Number of lines currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no lines are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A set-associative, LRU-replacement cache tag array with a victim buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    victim: VictimBuffer,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the associativity is 0.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.assoc > 0, "associativity must be at least 1");
        let sets = vec![vec![Line::invalid(); config.assoc]; config.num_sets()];
        Cache {
            victim: VictimBuffer::new(config.victim_entries),
            config,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Line-aligned address for this cache's line size.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        self.config.line_addr(addr)
    }

    /// Probes for `addr` as a demand access at cycle `now`, updating LRU state
    /// and statistics.  A victim-buffer hit counts as a hit and moves the line
    /// back into the main array.
    pub fn access(&mut self, addr: Addr, now: Cycle, is_write: bool) -> ProbeResult {
        self.stats.accesses += 1;
        let line_addr = self.config.line_addr(addr);
        let set = self.config.set_index(addr);
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == line_addr)
        {
            line.last_use = now;
            if is_write {
                line.dirty = true;
            }
            return ProbeResult::Hit {
                ready_at: line.ready_at.max(now),
            };
        }
        // Victim buffer probe: hit moves the line back into the array.  The
        // line keeps its original fill time: a victim evicted mid-fill still
        // cannot supply data before the fill arrives.
        if let Some((dirty, ready_at)) = self.victim.take(line_addr) {
            self.stats.victim_hits += 1;
            let ready_at = ready_at.max(now);
            self.fill_internal(line_addr, now, ready_at, dirty || is_write);
            return ProbeResult::Hit { ready_at };
        }
        self.stats.misses += 1;
        ProbeResult::Miss
    }

    /// Probes without updating statistics or LRU (used by prefetchers and by
    /// external-store snoops).
    pub fn peek(&self, addr: Addr) -> bool {
        let line_addr = self.config.line_addr(addr);
        let set = self.config.set_index(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == line_addr)
    }

    /// Fills `addr`'s line, marking its data ready at `ready_at`.  Returns the
    /// evicted line if a valid line had to be displaced (after it has been
    /// pushed through the victim buffer).
    pub fn fill(&mut self, addr: Addr, now: Cycle, ready_at: Cycle, dirty: bool) -> Option<Evicted> {
        self.stats.fills += 1;
        self.fill_internal(self.config.line_addr(addr), now, ready_at, dirty)
    }

    fn fill_internal(
        &mut self,
        line_addr: Addr,
        now: Cycle,
        ready_at: Cycle,
        dirty: bool,
    ) -> Option<Evicted> {
        let set = self.config.set_index(line_addr);
        // Already present (e.g. prefetch raced a demand fill): refresh.
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == line_addr)
        {
            line.last_use = now;
            line.ready_at = line.ready_at.min(ready_at);
            line.dirty |= dirty;
            return None;
        }
        let way = self.choose_victim(set);
        let old = self.sets[set][way];
        self.sets[set][way] = Line {
            tag: line_addr,
            valid: true,
            dirty,
            last_use: now,
            ready_at,
        };
        if old.valid {
            if old.dirty {
                self.stats.writebacks += 1;
            }
            // Displaced lines go to the victim buffer; whatever the victim
            // buffer displaces in turn is reported to the caller.
            return self.victim.insert(old.tag, old.dirty, old.ready_at);
        }
        None
    }

    fn choose_victim(&self, set: usize) -> usize {
        // Invalid way first, else LRU.
        if let Some(idx) = self.sets[set].iter().position(|l| !l.valid) {
            return idx;
        }
        self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_use)
            .map(|(i, _)| i)
            .expect("associativity is at least 1")
    }

    /// Invalidates `addr`'s line if present (used by SLTP's speculative-line
    /// flush and by external invalidations).  Returns true if a line was
    /// invalidated.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let line_addr = self.config.line_addr(addr);
        let set = self.config.set_index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == line_addr {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            victim_entries: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().num_sets(), 4);
        assert_eq!(c.config().line_addr(0x7f), 0x40);
        assert_eq!(c.config().set_index(0x40), 1);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000, 0, false), ProbeResult::Miss);
        c.fill(0x1000, 0, 10, false);
        match c.access(0x1000, 5, false) {
            ProbeResult::Hit { ready_at } => assert_eq!(ready_at, 10),
            _ => panic!("expected hit-under-fill"),
        }
        match c.access(0x1000, 20, false) {
            ProbeResult::Hit { ready_at } => assert_eq!(ready_at, 20),
            _ => panic!("expected plain hit"),
        }
    }

    #[test]
    fn lru_replacement_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 lines: addresses with set_index 0, i.e. multiples of 64*4=256.
        c.fill(0x0000, 0, 0, false);
        c.fill(0x0100, 1, 1, false);
        // Touch 0x0000 so 0x0100 becomes LRU.
        c.access(0x0000, 2, false);
        let evicted = c.fill(0x0200, 3, 3, false);
        // Evicted line goes into victim buffer first, so no overflow yet.
        assert!(evicted.is_none());
        // 0x0100 must be gone from the array but still victim-buffered.
        assert!(c.peek(0x0000));
        assert!(c.peek(0x0200));
        assert!(!c.peek(0x0100));
        // Access to 0x0100 hits via the victim buffer.
        assert!(matches!(c.access(0x0100, 4, false), ProbeResult::Hit { .. }));
        assert_eq!(c.stats().victim_hits, 1);
    }

    #[test]
    fn victim_buffer_overflow_reports_displaced_line() {
        let mut vb = VictimBuffer::new(1);
        assert!(vb.insert(0x40, false, 0).is_none());
        let displaced = vb.insert(0x80, true, 0).expect("should displace");
        assert_eq!(displaced.line_addr, 0x40);
        assert_eq!(vb.len(), 1);
    }

    #[test]
    fn zero_capacity_victim_buffer_passes_through() {
        let mut vb = VictimBuffer::new(0);
        let d = vb.insert(0x40, true, 0).unwrap();
        assert_eq!(d.line_addr, 0x40);
        assert!(d.dirty);
        assert!(vb.is_empty());
    }

    #[test]
    fn victim_hit_preserves_in_flight_fill_time() {
        // Fill a line whose data arrives at cycle 500, evict it while the
        // fill is still in flight, then re-access it via the victim buffer:
        // the data must still not be available before cycle 500.
        let mut c = tiny();
        c.fill(0x0000, 0, 500, false);
        c.fill(0x0100, 1, 1, false);
        c.fill(0x0200, 2, 2, false); // evicts 0x0000 (LRU) to the victim buffer
        assert!(!c.peek(0x0000));
        match c.access(0x0000, 10, false) {
            ProbeResult::Hit { ready_at } => assert_eq!(ready_at, 500),
            _ => panic!("expected victim-buffer hit"),
        }
    }

    #[test]
    fn writes_set_dirty_and_cause_writebacks() {
        let mut c = tiny();
        c.fill(0x0000, 0, 0, false);
        c.access(0x0000, 1, true); // dirty it
        c.fill(0x0100, 2, 2, false);
        c.fill(0x0200, 3, 3, false); // evicts 0x0000 (dirty) to victim buffer
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(0x1000, 0, 0, false);
        assert!(c.peek(0x1000));
        assert!(c.invalidate(0x1000));
        assert!(!c.peek(0x1000));
        assert!(!c.invalidate(0x1000));
    }

    #[test]
    fn stats_miss_rate() {
        let mut c = tiny();
        c.access(0x0, 0, false);
        c.fill(0x0, 0, 0, false);
        c.access(0x0, 1, false);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn resident_lines_counts_fills() {
        let mut c = tiny();
        assert_eq!(c.resident_lines(), 0);
        c.fill(0x0, 0, 0, false);
        c.fill(0x40, 0, 0, false);
        assert_eq!(c.resident_lines(), 2);
    }
}
