//! # icfp-mem — memory hierarchy substrate
//!
//! A cycle-accounting, non-blocking memory hierarchy modelled after the
//! configuration in Table 1 of the iCFP paper (HPCA 2009):
//!
//! * 32 KB 4-way L1 data cache, 64 B lines, 8-entry victim buffer,
//!   3-cycle hit pipeline;
//! * 1 MB 8-way L2, 128 B lines, 4-entry victim buffer, 20-cycle hit latency;
//! * 64 outstanding misses (MSHRs), miss-status merging on the same line;
//! * 400-cycle memory latency to the first 16 bytes, 4 cycles per additional
//!   16-byte chunk, and a memory bus that accepts one L2 line every 32 cycles
//!   (which caps exploitable L2 MLP at ~12, as the paper notes);
//! * 8 stream buffers of 8×128 B blocks for hardware prefetch.
//!
//! The hierarchy is *timestamp-scheduled* rather than event-callback driven:
//! every access computes, at issue time, the cycle at which its data becomes
//! available, taking MSHR merging, bus occupancy and prefetch state into
//! account.  Pipeline models poll those completion times.  This keeps the core
//! models simple while preserving the timing behaviour that the paper's
//! evaluation depends on (miss overlap, bus-bandwidth-limited MLP, secondary
//! misses under primary misses).
//!
//! ```
//! use icfp_mem::{MemoryHierarchy, MemConfig, AccessOutcome};
//!
//! let mut mem = MemoryHierarchy::new(MemConfig::paper_default());
//! let resp = mem.load(0x4000, 0).expect("mshr available");
//! assert_eq!(resp.outcome, AccessOutcome::L2Miss); // cold caches: full miss
//! assert!(resp.completes_at >= 400);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod stats;

pub use bus::MemoryBus;
pub use cache::{Cache, CacheConfig, VictimBuffer};
pub use config::MemConfig;
pub use hierarchy::{AccessOutcome, LoadResponse, MemError, MemoryHierarchy, StoreResponse};
pub use mshr::{MshrFile, MshrId, MshrRequest};
pub use prefetch::StreamPrefetcher;
pub use stats::{MemStats, MlpTracker};
