//! Memory-hierarchy configuration.

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Complete configuration of the simulated memory hierarchy.
///
/// [`MemConfig::paper_default`] reproduces Table 1 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L2 unified cache geometry.
    pub l2: CacheConfig,
    /// L1 data-cache hit latency in cycles (3-stage D$ pipeline).
    pub l1_hit_latency: u64,
    /// L2 hit latency in cycles (the paper sweeps this in Figure 6; default 20).
    pub l2_hit_latency: u64,
    /// Main-memory latency to the first 16-byte chunk.
    pub mem_latency: u64,
    /// Additional cycles per subsequent 16-byte chunk of a line transfer.
    pub mem_chunk_latency: u64,
    /// Chunk size in bytes for the memory transfer model.
    pub mem_chunk_bytes: u64,
    /// Minimum spacing between line transfers on the memory bus, in cycles
    /// ("one L2 cache line every 32 cycles", Section 5.1).
    pub bus_line_interval: u64,
    /// Maximum number of outstanding misses (MSHRs).
    pub max_outstanding_misses: usize,
    /// Number of hardware stream buffers.
    pub stream_buffers: usize,
    /// Blocks per stream buffer.
    pub stream_buffer_blocks: usize,
    /// Whether the stream prefetcher is enabled.
    pub prefetch_enabled: bool,
}

impl MemConfig {
    /// The configuration from Table 1 of the paper.
    ///
    /// * I$/D$: 32 KB, 4-way, 64-byte lines, 8-entry victim buffer
    /// * L2: 1 MB, 8-way, 128-byte lines, 4-entry victim buffer, 20-cycle hit
    /// * Memory: 400 cycles to the first 16 bytes, 4 cycles per additional
    ///   16-byte chunk, 64 outstanding misses
    /// * Prefetch: 8 stream buffers with 8 128-byte blocks each
    pub fn paper_default() -> Self {
        MemConfig {
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 4,
                line_bytes: 64,
                victim_entries: 8,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 8,
                line_bytes: 128,
                victim_entries: 4,
            },
            l1_hit_latency: 3,
            l2_hit_latency: 20,
            mem_latency: 400,
            mem_chunk_latency: 4,
            mem_chunk_bytes: 16,
            bus_line_interval: 32,
            max_outstanding_misses: 64,
            stream_buffers: 8,
            stream_buffer_blocks: 8,
            prefetch_enabled: true,
        }
    }

    /// A scaled-down configuration for fast unit tests: tiny caches (so that
    /// misses are easy to provoke), short memory latency, prefetch off.
    pub fn tiny_for_tests() -> Self {
        MemConfig {
            l1d: CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 64,
                victim_entries: 2,
            },
            l2: CacheConfig {
                size_bytes: 8 * 1024,
                assoc: 4,
                line_bytes: 128,
                victim_entries: 2,
            },
            l1_hit_latency: 3,
            l2_hit_latency: 20,
            mem_latency: 100,
            mem_chunk_latency: 4,
            mem_chunk_bytes: 16,
            bus_line_interval: 8,
            max_outstanding_misses: 8,
            stream_buffers: 2,
            stream_buffer_blocks: 4,
            prefetch_enabled: false,
        }
    }

    /// Returns a copy with a different L2 hit latency (Figure 6 sweep).
    pub fn with_l2_hit_latency(mut self, latency: u64) -> Self {
        self.l2_hit_latency = latency;
        self
    }

    /// Returns a copy with the prefetcher enabled or disabled.
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch_enabled = enabled;
        self
    }

    /// Total latency for a full line transfer from memory (first chunk plus
    /// all remaining chunks of an L2 line).
    pub fn full_line_transfer_latency(&self) -> u64 {
        let chunks = (self.l2.line_bytes / self.mem_chunk_bytes).max(1);
        self.mem_latency + (chunks - 1) * self.mem_chunk_latency
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = MemConfig::paper_default();
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.assoc, 4);
        assert_eq!(c.l1d.line_bytes, 64);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.l2.line_bytes, 128);
        assert_eq!(c.l2_hit_latency, 20);
        assert_eq!(c.mem_latency, 400);
        assert_eq!(c.max_outstanding_misses, 64);
        assert_eq!(c.stream_buffers, 8);
    }

    #[test]
    fn full_line_transfer_is_428_cycles() {
        // 128-byte line in 16-byte chunks: 400 + 7*4 = 428.
        assert_eq!(MemConfig::paper_default().full_line_transfer_latency(), 428);
    }

    #[test]
    fn builder_style_overrides() {
        let c = MemConfig::paper_default()
            .with_l2_hit_latency(40)
            .with_prefetch(false);
        assert_eq!(c.l2_hit_latency, 40);
        assert!(!c.prefetch_enabled);
    }
}
