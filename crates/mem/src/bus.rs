//! Memory bus and DRAM timing model.
//!
//! The paper's configuration (Table 1): 400-cycle latency to the first
//! 16 bytes of a line, 4 additional cycles per subsequent 16-byte chunk, and a
//! bus that can accept a new L2 line transfer only every 32 cycles.  The bus
//! occupancy is what bounds exploitable L2 MLP at roughly
//! `mem_latency / bus_line_interval ≈ 12`, a limit the paper calls out
//! explicitly in Section 5.1.

use icfp_isa::Cycle;
use serde::{Deserialize, Serialize};

/// Completion times of a line transfer from main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Cycle at which the transfer occupies the bus (request accepted).
    pub starts_at: Cycle,
    /// Cycle at which the critical (first) chunk arrives; loads waiting on the
    /// miss can complete here.
    pub critical_chunk_at: Cycle,
    /// Cycle at which the full line has arrived; the line fill is complete.
    pub line_complete_at: Cycle,
}

/// Statistics for the memory bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Number of line transfers scheduled.
    pub transfers: u64,
    /// Total cycles transfers spent waiting for the bus to become free.
    pub queue_cycles: u64,
    /// Low-priority (prefetch) transfers rejected because the bus was busy.
    pub prefetch_drops: u64,
}

/// The off-chip memory bus: serializes line transfers at a fixed interval and
/// adds DRAM access latency.
///
/// Transfers come in two priorities.  *Demand* transfers (cache misses the
/// pipeline waits on) queue behind older demand transfers plus at most one
/// bus slot of lower-priority occupancy — an arriving demand preempts queued
/// prefetches rather than waiting out the whole prefetch queue.  *Prefetch*
/// transfers use spare bandwidth only: they queue behind everything and are
/// dropped outright once the backlog exceeds a few slots.  Without the
/// priority split, a stream-prefetch burst issued on one demand miss would
/// delay the *next* demand miss by the whole burst, serializing independent
/// misses hundreds of cycles apart and destroying the memory-level
/// parallelism the paper's mechanisms exist to exploit (one line every
/// 32 cycles against a 400-cycle latency ⇒ MLP ≈ 12, Section 5.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryBus {
    /// Memory latency to the first chunk.
    latency: u64,
    /// Cycles per additional chunk.
    chunk_latency: u64,
    /// Chunks per line.
    chunks_per_line: u64,
    /// Minimum spacing between transfer starts.
    line_interval: u64,
    /// Earliest cycle at which the bus can accept another transfer of any
    /// priority (the end of the full queue, prefetches included).
    next_free: Cycle,
    /// Earliest cycle at which another *demand* transfer can start (the end
    /// of the demand-only queue).
    demand_next_free: Cycle,
    stats: BusStats,
}

impl MemoryBus {
    /// Creates a bus/DRAM model.
    ///
    /// * `latency` — cycles from request acceptance to the first chunk;
    /// * `chunk_latency` — cycles per additional chunk;
    /// * `line_bytes` / `chunk_bytes` — determine chunks per line;
    /// * `line_interval` — minimum spacing between accepted transfers.
    pub fn new(
        latency: u64,
        chunk_latency: u64,
        line_bytes: u64,
        chunk_bytes: u64,
        line_interval: u64,
    ) -> Self {
        MemoryBus {
            latency,
            chunk_latency,
            chunks_per_line: (line_bytes / chunk_bytes).max(1),
            line_interval,
            next_free: 0,
            demand_next_free: 0,
            stats: BusStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// The earliest cycle at which a new transfer could be accepted.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Schedules a *demand* line transfer requested at `now`, returning its
    /// timing.  Demands wait for older demands plus at most one bus slot of
    /// prefetch occupancy (they preempt the rest of the prefetch queue; the
    /// already-estimated arrival times of displaced prefetches are left
    /// untouched, a deliberate approximation).
    pub fn schedule(&mut self, now: Cycle) -> Transfer {
        let preempt_floor = self.next_free.min(now + self.line_interval);
        let starts_at = now.max(self.demand_next_free).max(preempt_floor);
        self.demand_next_free = starts_at + self.line_interval;
        self.next_free = self.next_free.max(starts_at + self.line_interval);
        self.transfer_from(now, starts_at)
    }

    /// Schedules a *low-priority* line transfer (hardware prefetch) requested
    /// at `now`.  Prefetches use spare bandwidth only: they queue behind all
    /// scheduled transfers, and once the backlog exceeds a few slots they are
    /// dropped (returns `None`) instead of piling further delay onto the bus.
    pub fn schedule_prefetch(&mut self, now: Cycle) -> Option<Transfer> {
        let starts_at = now.max(self.next_free);
        if starts_at > now + 4 * self.line_interval {
            self.stats.prefetch_drops += 1;
            return None;
        }
        self.next_free = starts_at + self.line_interval;
        Some(self.transfer_from(now, starts_at))
    }

    fn transfer_from(&mut self, now: Cycle, starts_at: Cycle) -> Transfer {
        self.stats.transfers += 1;
        self.stats.queue_cycles += starts_at - now;
        let critical_chunk_at = starts_at + self.latency;
        let line_complete_at = critical_chunk_at + (self.chunks_per_line - 1) * self.chunk_latency;
        Transfer {
            starts_at,
            critical_chunk_at,
            line_complete_at,
        }
    }

    /// Resets the bus to idle (used between independent simulation runs that
    /// share a hierarchy object).
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.demand_next_free = 0;
        self.stats = BusStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_bus() -> MemoryBus {
        MemoryBus::new(400, 4, 128, 16, 32)
    }

    #[test]
    fn single_transfer_timing() {
        let mut bus = paper_bus();
        let t = bus.schedule(100);
        assert_eq!(t.starts_at, 100);
        assert_eq!(t.critical_chunk_at, 500);
        assert_eq!(t.line_complete_at, 500 + 7 * 4);
    }

    #[test]
    fn back_to_back_transfers_are_spaced_by_interval() {
        let mut bus = paper_bus();
        let a = bus.schedule(0);
        let b = bus.schedule(0);
        let c = bus.schedule(0);
        assert_eq!(a.starts_at, 0);
        assert_eq!(b.starts_at, 32);
        assert_eq!(c.starts_at, 64);
        assert_eq!(bus.stats().transfers, 3);
        assert_eq!(bus.stats().queue_cycles, 32 + 64);
    }

    #[test]
    fn bus_idles_between_spaced_requests() {
        let mut bus = paper_bus();
        bus.schedule(0);
        let t = bus.schedule(1000);
        assert_eq!(t.starts_at, 1000);
    }

    #[test]
    fn mlp_bound_matches_paper_ratio() {
        // The paper: "our simulated processor can only practically exploit an
        // L2 MLP of 12, because of the ratio of memory latency (400 cycles) to
        // memory bus bandwidth (one L2 cache line every 32 cycles)".
        let bus = paper_bus();
        assert_eq!(bus.latency / bus.line_interval, 12);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = paper_bus();
        bus.schedule(0);
        bus.reset();
        assert_eq!(bus.next_free(), 0);
        assert_eq!(bus.stats().transfers, 0);
    }

    #[test]
    fn demand_preempts_queued_prefetches() {
        let mut bus = paper_bus();
        bus.schedule(0); // demand, occupies 0..32
        // Four prefetches queue in spare bandwidth: 32, 64, 96, 128.
        for _ in 0..4 {
            assert!(bus.schedule_prefetch(0).is_some());
        }
        // A demand arriving at 10 waits at most one slot beyond its own
        // queue, not the whole prefetch backlog.
        let d = bus.schedule(10);
        assert_eq!(d.starts_at, 42, "demand must not queue behind prefetches");
    }

    #[test]
    fn prefetch_backlog_is_bounded() {
        let mut bus = paper_bus();
        let mut accepted = 0;
        for _ in 0..8 {
            if bus.schedule_prefetch(0).is_some() {
                accepted += 1;
            }
        }
        // Slots at 0, 32, 64, 96, 128 are within the 4-slot backlog bound.
        assert_eq!(accepted, 5);
        assert_eq!(bus.stats().prefetch_drops, 3);
    }
}
