//! Memory bus and DRAM timing model.
//!
//! The paper's configuration (Table 1): 400-cycle latency to the first
//! 16 bytes of a line, 4 additional cycles per subsequent 16-byte chunk, and a
//! bus that can accept a new L2 line transfer only every 32 cycles.  The bus
//! occupancy is what bounds exploitable L2 MLP at roughly
//! `mem_latency / bus_line_interval ≈ 12`, a limit the paper calls out
//! explicitly in Section 5.1.

use icfp_isa::Cycle;
use serde::{Deserialize, Serialize};

/// Completion times of a line transfer from main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Cycle at which the transfer occupies the bus (request accepted).
    pub starts_at: Cycle,
    /// Cycle at which the critical (first) chunk arrives; loads waiting on the
    /// miss can complete here.
    pub critical_chunk_at: Cycle,
    /// Cycle at which the full line has arrived; the line fill is complete.
    pub line_complete_at: Cycle,
}

/// Statistics for the memory bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Number of line transfers scheduled.
    pub transfers: u64,
    /// Total cycles transfers spent waiting for the bus to become free.
    pub queue_cycles: u64,
}

/// The off-chip memory bus: serializes line transfers at a fixed interval and
/// adds DRAM access latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryBus {
    /// Memory latency to the first chunk.
    latency: u64,
    /// Cycles per additional chunk.
    chunk_latency: u64,
    /// Chunks per line.
    chunks_per_line: u64,
    /// Minimum spacing between transfer starts.
    line_interval: u64,
    /// Earliest cycle at which the bus can accept another transfer.
    next_free: Cycle,
    stats: BusStats,
}

impl MemoryBus {
    /// Creates a bus/DRAM model.
    ///
    /// * `latency` — cycles from request acceptance to the first chunk;
    /// * `chunk_latency` — cycles per additional chunk;
    /// * `line_bytes` / `chunk_bytes` — determine chunks per line;
    /// * `line_interval` — minimum spacing between accepted transfers.
    pub fn new(
        latency: u64,
        chunk_latency: u64,
        line_bytes: u64,
        chunk_bytes: u64,
        line_interval: u64,
    ) -> Self {
        MemoryBus {
            latency,
            chunk_latency,
            chunks_per_line: (line_bytes / chunk_bytes).max(1),
            line_interval,
            next_free: 0,
            stats: BusStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// The earliest cycle at which a new transfer could be accepted.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Schedules a line transfer requested at `now`, returning its timing.
    pub fn schedule(&mut self, now: Cycle) -> Transfer {
        let starts_at = now.max(self.next_free);
        self.stats.transfers += 1;
        self.stats.queue_cycles += starts_at - now;
        self.next_free = starts_at + self.line_interval;
        let critical_chunk_at = starts_at + self.latency;
        let line_complete_at = critical_chunk_at + (self.chunks_per_line - 1) * self.chunk_latency;
        Transfer {
            starts_at,
            critical_chunk_at,
            line_complete_at,
        }
    }

    /// Resets the bus to idle (used between independent simulation runs that
    /// share a hierarchy object).
    pub fn reset(&mut self) {
        self.next_free = 0;
        self.stats = BusStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_bus() -> MemoryBus {
        MemoryBus::new(400, 4, 128, 16, 32)
    }

    #[test]
    fn single_transfer_timing() {
        let mut bus = paper_bus();
        let t = bus.schedule(100);
        assert_eq!(t.starts_at, 100);
        assert_eq!(t.critical_chunk_at, 500);
        assert_eq!(t.line_complete_at, 500 + 7 * 4);
    }

    #[test]
    fn back_to_back_transfers_are_spaced_by_interval() {
        let mut bus = paper_bus();
        let a = bus.schedule(0);
        let b = bus.schedule(0);
        let c = bus.schedule(0);
        assert_eq!(a.starts_at, 0);
        assert_eq!(b.starts_at, 32);
        assert_eq!(c.starts_at, 64);
        assert_eq!(bus.stats().transfers, 3);
        assert_eq!(bus.stats().queue_cycles, 32 + 64);
    }

    #[test]
    fn bus_idles_between_spaced_requests() {
        let mut bus = paper_bus();
        bus.schedule(0);
        let t = bus.schedule(1000);
        assert_eq!(t.starts_at, 1000);
    }

    #[test]
    fn mlp_bound_matches_paper_ratio() {
        // The paper: "our simulated processor can only practically exploit an
        // L2 MLP of 12, because of the ratio of memory latency (400 cycles) to
        // memory bus bandwidth (one L2 cache line every 32 cycles)".
        let bus = paper_bus();
        assert_eq!(bus.latency / bus.line_interval, 12);
    }

    #[test]
    fn reset_clears_state() {
        let mut bus = paper_bus();
        bus.schedule(0);
        bus.reset();
        assert_eq!(bus.next_free(), 0);
        assert_eq!(bus.stats().transfers, 0);
    }
}
