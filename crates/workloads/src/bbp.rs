//! `icfp-bbp/v1` — a basic-block-profile text format and its converter.
//!
//! The real-workload frontend: external traces arrive as a compact,
//! hand-editable text profile — static basic blocks plus dynamic repeat
//! counts — and convert into the workspace's dynamic-instruction stream (an
//! in-memory [`Trace`] or, streamed through the `icfp-trace/v1` writer, an
//! on-disk container that never fully materializes).  This mirrors how
//! trace-driven simulators ingest SPEC/Alpha-style basic-block profiles: the
//! profile compresses billions of dynamic instructions into blocks × counts.
//!
//! ## Grammar (line-oriented; `#` starts a comment)
//!
//! ```text
//! name <workload-name>             # trace name (default: the file stem)
//! pc 0x2000                        # set the next instruction's PC
//! loop <count> ... end             # repeat the body <count> times (nestable)
//! ld  r<D>, r<B>, <addr>           # load  r<D> = mem[<addr>]
//! st  r<S>, r<B>, <addr>           # store mem[<addr>] = r<S>
//! add|sub|and|or|xor|shl|shr|cmplt|mul|fadd|fmul <dst>, <src1>[, <src2>|#imm]
//! br  r<C>, t|n, 0x<target> [<predictability>]
//! nop
//! ```
//!
//! Registers are `r0..r31` (integer) and `f0..f31` (floating point).
//! `<addr>` is either a literal (`0x40000`) or a stride pattern
//! (`0x40000+64*i`), where `i` is the innermost enclosing loop's iteration
//! index — enough to express pointer walks, streaming scans and conflict
//! sets.  A `pc` directive inside a loop re-applies every iteration, which
//! models revisiting the same static PCs (what the branch predictor and
//! stream prefetcher care about).
//!
//! Parsing is strict: any malformed line is a [`BbpError`] naming the line
//! number — hostile input never panics.

use crate::gen::TraceSink;
use icfp_isa::{DynInst, Op, Reg, Trace, TraceBuilder, NUM_FP_REGS, NUM_INT_REGS};
use std::fmt;

/// A parse error, pointing at the offending line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbpError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for BbpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bbp line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for BbpError {}

fn err(line: usize, msg: impl Into<String>) -> BbpError {
    BbpError {
        line,
        msg: msg.into(),
    }
}

/// An effective-address expression: `base [+ stride*i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AddrExpr {
    base: u64,
    stride: u64,
}

impl AddrExpr {
    fn resolve(self, iter: u64) -> u64 {
        self.base.wrapping_add(self.stride.wrapping_mul(iter))
    }
}

/// One parsed statement.
#[derive(Debug, Clone, PartialEq)]
enum Item {
    SetPc(u64),
    Load {
        dst: Reg,
        base: Reg,
        addr: AddrExpr,
    },
    Store {
        data: Reg,
        base: Reg,
        addr: AddrExpr,
    },
    Alu {
        op: Op,
        dst: Reg,
        src1: Reg,
        src2: Option<Reg>,
        imm: u64,
    },
    Branch {
        cond: Reg,
        taken: bool,
        target: u64,
        predictability: f32,
    },
    Nop,
    Loop {
        count: u64,
        body: Vec<Item>,
    },
}

/// A parsed `icfp-bbp/v1` program.
#[derive(Debug, Clone, PartialEq)]
pub struct BbpProgram {
    /// Trace name (`name` directive), if present.
    pub name: Option<String>,
    items: Vec<Item>,
}

impl BbpProgram {
    /// Total dynamic instructions the program expands to (loops multiplied
    /// out; saturating so hostile counts cannot overflow).
    pub fn dynamic_len(&self) -> u64 {
        fn count(items: &[Item]) -> u64 {
            items
                .iter()
                .map(|i| match i {
                    Item::SetPc(_) => 0,
                    Item::Loop { count: n, body } => n.saturating_mul(count(body)),
                    _ => 1,
                })
                .fold(0u64, u64::saturating_add)
        }
        count(&self.items)
    }

    /// Expands the program into `sink` (a [`TraceBuilder`], the
    /// `icfp-trace/v1` writer adapter, ...).  Memory use is bounded by the
    /// parsed program, not the dynamic stream.
    pub fn emit(&self, sink: &mut dyn TraceSink) {
        emit_items(&self.items, 0, sink);
    }

    /// Expands the program into an in-memory [`Trace`] named `fallback_name`
    /// unless the program names itself.
    pub fn to_trace(&self, fallback_name: &str) -> Trace {
        let name = self.name.as_deref().unwrap_or(fallback_name);
        let mut b = TraceBuilder::new(name);
        self.emit(&mut b);
        b.build()
    }
}

fn emit_items(items: &[Item], iter: u64, sink: &mut dyn TraceSink) {
    for item in items {
        match item {
            Item::SetPc(pc) => sink.set_next_pc(*pc),
            Item::Load { dst, base, addr } => {
                sink.push(DynInst::load(*dst, *base, addr.resolve(iter)));
            }
            Item::Store { data, base, addr } => {
                sink.push(DynInst::store(*data, *base, addr.resolve(iter)));
            }
            Item::Alu {
                op,
                dst,
                src1,
                src2,
                imm,
            } => match src2 {
                Some(s2) => sink.push(DynInst::alu(*op, *dst, *src1, *s2)),
                None => sink.push(DynInst::alu_imm(*op, *dst, *src1, *imm)),
            },
            Item::Branch {
                cond,
                taken,
                target,
                predictability,
            } => {
                sink.push(DynInst::branch(*cond, *taken, *target, *predictability));
            }
            Item::Nop => sink.push(DynInst::nop()),
            Item::Loop { count, body } => {
                for k in 0..*count {
                    emit_items(body, k, sink);
                }
            }
        }
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, BbpError> {
    let (class, rest) = tok
        .split_at_checked(1)
        .ok_or_else(|| err(line, format!("expected a register, got {tok:?}")))?;
    let n: usize = rest
        .parse()
        .map_err(|_| err(line, format!("bad register {tok:?}")))?;
    match class {
        "r" if n < NUM_INT_REGS => Ok(Reg::int(n)),
        "f" if n < NUM_FP_REGS => Ok(Reg::fp(n)),
        "r" | "f" => Err(err(line, format!("register {tok:?} out of range"))),
        _ => Err(err(line, format!("expected a register, got {tok:?}"))),
    }
}

fn parse_u64(tok: &str, line: usize, what: &str) -> Result<u64, BbpError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| err(line, format!("bad {what} {tok:?}")))
}

/// `0xBASE` or `0xBASE+STRIDE*i`.
fn parse_addr(tok: &str, line: usize) -> Result<AddrExpr, BbpError> {
    match tok.split_once('+') {
        None => Ok(AddrExpr {
            base: parse_u64(tok, line, "address")?,
            stride: 0,
        }),
        Some((base, rest)) => {
            let stride = rest
                .strip_suffix("*i")
                .ok_or_else(|| err(line, format!("bad address pattern {tok:?} (want BASE+STRIDE*i)")))?;
            Ok(AddrExpr {
                base: parse_u64(base, line, "address")?,
                stride: parse_u64(stride, line, "stride")?,
            })
        }
    }
}

fn alu_op(mnemonic: &str) -> Option<Op> {
    Some(match mnemonic {
        "add" => Op::Add,
        "sub" => Op::Sub,
        "and" => Op::And,
        "or" => Op::Or,
        "xor" => Op::Xor,
        "shl" => Op::Shl,
        "shr" => Op::Shr,
        "cmplt" => Op::CmpLt,
        "mul" => Op::Mul,
        "fadd" => Op::FpAdd,
        "fmul" => Op::FpMul,
        _ => return None,
    })
}

/// Parses an `icfp-bbp/v1` document.
///
/// # Errors
///
/// A [`BbpError`] naming the first malformed line.
pub fn parse(text: &str) -> Result<BbpProgram, BbpError> {
    let mut name = None;
    // Stack of open scopes: the bottom is the program body, every `loop`
    // pushes (count, body).
    let mut stack: Vec<(u64, Vec<Item>)> = vec![(1, Vec::new())];
    let mut loop_lines: Vec<usize> = Vec::new();

    for (k, raw) in text.lines().enumerate() {
        let line = k + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let toks: Vec<&str> = code
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|t| !t.is_empty())
            .collect();
        let (mnemonic, args) = (toks[0], &toks[1..]);
        let item = match mnemonic {
            "name" => {
                let [n] = args else {
                    return Err(err(line, "name takes exactly one argument"));
                };
                name = Some(n.to_string());
                continue;
            }
            "pc" => {
                let [a] = args else {
                    return Err(err(line, "pc takes exactly one address"));
                };
                Item::SetPc(parse_u64(a, line, "pc")?)
            }
            "loop" => {
                let [n] = args else {
                    return Err(err(line, "loop takes exactly one repeat count"));
                };
                let count = parse_u64(n, line, "loop count")?;
                stack.push((count, Vec::new()));
                loop_lines.push(line);
                continue;
            }
            "end" => {
                if !args.is_empty() {
                    return Err(err(line, "end takes no arguments"));
                }
                let Some((count, body)) = stack.pop() else {
                    unreachable!("bottom scope always present");
                };
                if stack.is_empty() {
                    return Err(err(line, "end without a matching loop"));
                }
                loop_lines.pop();
                Item::Loop { count, body }
            }
            "ld" | "st" => {
                let [a, b, addr] = args else {
                    return Err(err(line, format!("{mnemonic} takes reg, reg, addr")));
                };
                let (ra, rb, addr) =
                    (parse_reg(a, line)?, parse_reg(b, line)?, parse_addr(addr, line)?);
                if mnemonic == "ld" {
                    Item::Load {
                        dst: ra,
                        base: rb,
                        addr,
                    }
                } else {
                    Item::Store {
                        data: ra,
                        base: rb,
                        addr,
                    }
                }
            }
            "br" => {
                let (cond, taken, target, pred) = match args {
                    [c, t, a] => (c, t, a, 0.5f32),
                    [c, t, a, p] => (
                        c,
                        t,
                        a,
                        p.parse::<f32>()
                            .map_err(|_| err(line, format!("bad predictability {p:?}")))?,
                    ),
                    _ => return Err(err(line, "br takes cond, t|n, target [, predictability]")),
                };
                let taken = match *taken {
                    "t" | "T" => true,
                    "n" | "N" => false,
                    other => return Err(err(line, format!("bad branch direction {other:?}"))),
                };
                if !(0.0..=1.0).contains(&pred) {
                    return Err(err(line, format!("predictability {pred} outside 0..=1")));
                }
                Item::Branch {
                    cond: parse_reg(cond, line)?,
                    taken,
                    target: parse_u64(target, line, "branch target")?,
                    predictability: pred,
                }
            }
            "nop" => {
                if !args.is_empty() {
                    return Err(err(line, "nop takes no arguments"));
                }
                Item::Nop
            }
            m => match alu_op(m) {
                None => return Err(err(line, format!("unknown mnemonic {m:?}"))),
                Some(op) => {
                    let [d, s1, rest @ ..] = args else {
                        return Err(err(line, format!("{m} takes dst, src1 [, src2|#imm]")));
                    };
                    let (dst, src1) = (parse_reg(d, line)?, parse_reg(s1, line)?);
                    match rest {
                        [] => Item::Alu {
                            op,
                            dst,
                            src1,
                            src2: None,
                            imm: 0,
                        },
                        [x] => match x.strip_prefix('#') {
                            Some(imm) => Item::Alu {
                                op,
                                dst,
                                src1,
                                src2: None,
                                imm: parse_u64(imm, line, "immediate")?,
                            },
                            None => Item::Alu {
                                op,
                                dst,
                                src1,
                                src2: Some(parse_reg(x, line)?),
                                imm: 0,
                            },
                        },
                        _ => return Err(err(line, format!("{m} takes at most three operands"))),
                    }
                }
            },
        };
        stack
            .last_mut()
            .expect("bottom scope always present")
            .1
            .push(item);
    }

    if stack.len() != 1 {
        let open = loop_lines.last().copied().unwrap_or(0);
        return Err(err(open, "loop without a matching end"));
    }
    let (_, items) = stack.pop().expect("bottom scope");
    Ok(BbpProgram { name, items })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a pointer walk over 64 lines with a biased exit branch
name walk
loop 8
  pc 0x2000
  ld r1, r1, 0x40000+64*i
  add r2, r1, #1
  br r2, t, 0x2000 0.95
end
st r2, r3, 0x9000
nop
";

    #[test]
    fn parses_and_expands_the_sample() {
        let p = parse(SAMPLE).expect("parse");
        assert_eq!(p.name.as_deref(), Some("walk"));
        assert_eq!(p.dynamic_len(), 8 * 3 + 2);
        let t = p.to_trace("fallback");
        assert_eq!(t.name(), "walk");
        assert_eq!(t.len(), 26);
        // Stride pattern: iteration i reads 0x40000 + 64*i.
        let loads: Vec<_> = t.iter().filter(|i| i.is_load()).collect();
        assert_eq!(loads.len(), 8);
        for (i, l) in loads.iter().enumerate() {
            assert_eq!(l.addr, Some(0x40000 + 64 * i as u64));
        }
        // The pc directive re-applies every iteration: all branches share
        // one static PC (the predictor-visible behaviour).
        let brs: Vec<_> = t.iter().filter(|i| i.is_branch()).collect();
        assert!(brs.windows(2).all(|w| w[0].pc == w[1].pc));
    }

    #[test]
    fn fallback_name_applies_when_unnamed() {
        let t = parse("nop\n").unwrap().to_trace("stem");
        assert_eq!(t.name(), "stem");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn nested_loops_multiply() {
        let p = parse("loop 3\nloop 4\nnop\nend\nadd r1, r1, #1\nend\n").unwrap();
        assert_eq!(p.dynamic_len(), 3 * (4 + 1));
        assert_eq!(p.to_trace("x").len(), 15);
    }

    #[test]
    fn malformed_lines_are_errors_with_line_numbers() {
        for (text, want_line) in [
            ("ld r1, r1\n", 1),                  // missing addr
            ("nop\nbogus r1\n", 2),              // unknown mnemonic
            ("ld r99, r1, 0x0\n", 1),            // register out of range
            ("br r1, x, 0x40\n", 1),             // bad direction
            ("br r1, t, 0x40 7.5\n", 1),         // predictability out of range
            ("loop 2\nnop\n", 1),                // unterminated loop
            ("end\n", 1),                        // stray end
            ("ld r1, r2, 0x10+8\n", 1),          // malformed stride pattern
            ("add r1\n", 1),                     // missing operands
        ] {
            let e = parse(text).expect_err(text);
            assert_eq!(e.line, want_line, "{text:?}: {e}");
        }
    }

    #[test]
    fn register_classes_parse() {
        let p = parse("fadd f1, f1, f2\n").unwrap();
        let t = p.to_trace("fp");
        assert_eq!(t.get(0).unwrap().op, Op::FpAdd);
        assert_eq!(t.get(0).unwrap().dst, Some(Reg::fp(1)));
    }

    #[test]
    fn hostile_loop_counts_do_not_overflow_len() {
        let p = parse("loop 0xffffffffffffffff\nloop 0xffffffffffffffff\nnop\nend\nend\n")
            .expect("parse");
        assert_eq!(p.dynamic_len(), u64::MAX, "saturates instead of wrapping");
    }
}
