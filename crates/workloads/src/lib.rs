//! # icfp-workloads — deterministic synthetic trace generators
//!
//! The paper evaluates on SPEC2000 Alpha binaries; this reproduction
//! substitutes synthetic workloads that exercise the same behaviours the
//! evaluated mechanisms care about (see `icfp-isa`): memory-level
//! parallelism, dependent-miss chains, store-forwarding pressure, branch
//! predictability and streaming access.  Every generator is a pure function
//! of its parameters and seed — the same inputs always produce bit-identical
//! traces, which is what makes simulator runs reproducible and benchmark
//! numbers comparable across machines and commits.
//!
//! The four standard scenarios (consumed by `icfp-bench` and the quickstart
//! example):
//!
//! | Generator | Stress |
//! |---|---|
//! | [`pointer_chase`] | dependent misses: each load's address depends on the previous load |
//! | [`dcache_thrash`] | independent conflict misses: MLP, slice-buffer growth |
//! | [`branchy`] | mispredict-bound control flow with mixed predictability |
//! | [`streaming`] | sequential walk: stream-prefetcher and bus bandwidth |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use icfp_isa::{DynInst, Op, Reg, Trace, TraceBuilder};

/// A tiny deterministic PRNG (splitmix64).  Local so the workspace needs no
/// external `rand` dependency and trace generation stays reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Pointer chasing: a linked-list walk where every load's effective address is
/// derived from the previous load's value.  Serialises misses (no MLP), the
/// worst case for Runahead and the motivating case for iCFP's slice/rally.
///
/// `insts` is the approximate dynamic instruction count; `working_set` the
/// footprint in bytes (larger than L2 ⇒ every hop is an L2 miss).
pub fn pointer_chase(insts: usize, working_set: u64, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
    let mut b = TraceBuilder::new("pointer-chase");
    let base = 0x10_0000u64;
    let slots = (working_set / 64).max(4);
    let mut cursor = rng.below(slots);
    while b.len() < insts {
        let addr = base + cursor * 64;
        // The chase: ld r1, [r1]; the trace pre-resolves the address.
        b.push(DynInst::load(Reg::int(1), Reg::int(1), addr));
        // A short dependent computation on the loaded value.
        b.push(DynInst::alu_imm(Op::Add, Reg::int(2), Reg::int(1), 1));
        b.push(DynInst::alu(Op::Xor, Reg::int(3), Reg::int(2), Reg::int(3)));
        // Some independent work the pipeline could overlap.
        for _ in 0..rng.below(4) {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), 3));
        }
        cursor = rng.below(slots);
    }
    b.build()
}

/// Data-cache thrashing: independent loads scattered over a working set that
/// conflicts in the L1 (and optionally the L2), each followed by a dependent
/// use and a burst of independent ALU work.  High MLP: the scenario where
/// advance execution overlaps many misses.
pub fn dcache_thrash(insts: usize, working_set: u64, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed ^ 0xD0_D0);
    let mut b = TraceBuilder::new("dcache-thrash");
    let base = 0x40_0000u64;
    let slots = (working_set / 64).max(8);
    while b.len() < insts {
        let addr = base + rng.below(slots) * 64;
        let dst = 1 + (rng.below(6) as usize);
        b.push(DynInst::load(Reg::int(dst), Reg::int(7), addr));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(8), Reg::int(dst), 1));
        for _ in 0..2 + rng.below(4) {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(9), Reg::int(10), 5));
        }
        if rng.chance(0.25) {
            // Occasional store to a recently loaded line: forwarding traffic.
            b.push(DynInst::store(Reg::int(8), Reg::int(7), addr ^ 8));
        }
    }
    b.build()
}

/// Branch-heavy code with a mix of biased and hard-to-predict branches over a
/// small set of static PCs, exercising the PPM predictor, BTB and redirect
/// penalty modelling.
pub fn branchy(insts: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed ^ 0xB4A4C4);
    let mut b = TraceBuilder::new("branchy");
    let mut bias_state = 0u64;
    while b.len() < insts {
        let pc = 0x2000 + rng.below(16) * 8;
        let hard = rng.chance(0.3);
        bias_state = bias_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let taken = if hard {
            rng.chance(0.5)
        } else {
            bias_state & 0xF != 0 // ~94% taken
        };
        let predictability = if hard { 0.55 } else { 0.95 };
        b.push(DynInst::alu_imm(Op::CmpLt, Reg::int(1), Reg::int(2), 1));
        b.set_next_pc(pc);
        b.push(DynInst::branch(Reg::int(1), taken, 0x4000 + pc, predictability));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(3), 1));
    }
    b.build()
}

/// Streaming: a unit-stride walk over a large array with interleaved
/// accumulation, plus a parallel store stream.  The stream prefetcher should
/// convert most misses into prefetch hits; the memory bus interval becomes
/// the bottleneck.
pub fn streaming(insts: usize, seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed ^ 0x57_12EA);
    let mut b = TraceBuilder::new("streaming");
    let base = 0x80_0000u64 + rng.below(64) * 4096;
    let mut off = 0u64;
    while b.len() < insts {
        b.push(DynInst::load(Reg::int(1), Reg::int(2), base + off));
        b.push(DynInst::alu(Op::FpAdd, Reg::fp(1), Reg::fp(1), Reg::fp(2)));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 7));
        if off % 128 == 64 {
            b.push(DynInst::store(Reg::int(3), Reg::int(4), base + 0x200_0000 + off));
        }
        off += 8;
    }
    b.build()
}

/// The four standard scenarios at a given dynamic-instruction budget,
/// suitable for benchmarking and smoke tests.
pub fn standard_suite(insts: usize, seed: u64) -> Vec<Trace> {
    vec![
        pointer_chase(insts, 8 * 1024 * 1024, seed),
        dcache_thrash(insts, 256 * 1024, seed),
        branchy(insts, seed),
        streaming(insts, seed),
    ]
}

/// Builds one of the standard scenarios by name (`pointer-chase`,
/// `dcache-thrash`, `branchy`, `streaming`).  Returns `None` for an unknown
/// name.
pub fn by_name(name: &str, insts: usize, seed: u64) -> Option<Trace> {
    match name {
        "pointer-chase" => Some(pointer_chase(insts, 8 * 1024 * 1024, seed)),
        "dcache-thrash" => Some(dcache_thrash(insts, 256 * 1024, seed)),
        "branchy" => Some(branchy(insts, seed)),
        "streaming" => Some(streaming(insts, seed)),
        _ => None,
    }
}

/// [`by_name`], but an unknown name is an error message listing the valid
/// workloads — the same shape of diagnostic `icfp-bench --core` gives for an
/// unknown core model, so every front end (CLI, sweep validation, tests)
/// reports unknown workloads identically.
///
/// # Errors
///
/// Returns the diagnostic for unknown names.
pub fn by_name_or_err(name: &str, insts: usize, seed: u64) -> Result<Trace, String> {
    by_name(name, insts, seed).ok_or_else(|| {
        format!(
            "unknown workload {name:?}; valid workloads: {}",
            STANDARD_NAMES.join(", ")
        )
    })
}

/// Names of the standard scenarios, in suite order.
pub const STANDARD_NAMES: [&str; 4] = ["pointer-chase", "dcache-thrash", "branchy", "streaming"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for name in STANDARD_NAMES {
            let a = by_name(name, 500, 42).unwrap();
            let b = by_name(name, 500, 42).unwrap();
            assert_eq!(a, b, "{name} must be reproducible");
            let c = by_name(name, 500, 43).unwrap();
            assert_ne!(a, c, "{name} must vary with the seed");
        }
    }

    #[test]
    fn suite_has_expected_shapes() {
        let suite = standard_suite(400, 7);
        assert_eq!(suite.len(), 4);
        for t in &suite {
            assert!(t.len() >= 400, "{} too short: {}", t.name(), t.len());
        }
        let chase = &suite[0];
        assert!(chase.stats().mem_fraction() > 0.2);
        let br = &suite[2];
        assert!(br.stats().branch_fraction() > 0.2);
    }

    #[test]
    fn pointer_chase_loads_depend_on_previous_load() {
        let t = pointer_chase(100, 1 << 20, 1);
        let loads: Vec<_> = t.iter().filter(|i| i.is_load()).collect();
        assert!(loads.len() > 10);
        for l in loads {
            assert_eq!(l.src1, Some(Reg::int(1)));
            assert_eq!(l.dst, Some(Reg::int(1)));
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("nope", 10, 0).is_none());
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-good splitmix64 sequence for seed 0 (reference implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
