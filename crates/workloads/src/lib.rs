//! # icfp-workloads — deterministic synthetic trace generators
//!
//! The paper evaluates on SPEC2000 Alpha binaries; this reproduction
//! substitutes synthetic workloads that exercise the same behaviours the
//! evaluated mechanisms care about (see `icfp-isa`): memory-level
//! parallelism, dependent-miss chains, store-forwarding pressure, branch
//! predictability and streaming access.  Every generator is a pure function
//! of its parameters and seed — the same inputs always produce bit-identical
//! traces, which is what makes simulator runs reproducible and benchmark
//! numbers comparable across machines and commits.
//!
//! Each generator exists in two equivalent forms backed by one state machine
//! (see [`gen`]):
//!
//! * the **arena** functions below ([`pointer_chase`], ...) materialize a
//!   whole [`Trace`] — content identical to every previous release;
//! * [`WorkloadSpec::source`] produces a streaming
//!   [`WorkloadSource`] whose blocks are re-generated on demand from
//!   per-boundary resume snapshots, so a 100M-instruction trace never fully
//!   materializes — and simulating either form is bit-identical.
//!
//! The four standard scenarios (consumed by `icfp-bench` and the quickstart
//! example) live in one [`STANDARD`] registry table — name, workload class
//! (for the figure renderer's geomeans) and constructor — from which
//! [`by_name`], [`by_name_or_err`], [`standard_suite`] and
//! [`STANDARD_NAMES`] all derive, so adding a workload is a one-line change:
//!
//! | Generator | Class | Stress |
//! |---|---|---|
//! | [`pointer_chase`] | memory | dependent misses: each load's address depends on the previous load |
//! | [`dcache_thrash`] | memory | independent conflict misses: MLP, slice-buffer growth |
//! | [`branchy`] | control | mispredict-bound control flow with mixed predictability |
//! | [`streaming`] | streaming | sequential walk: stream-prefetcher and bus bandwidth |
//!
//! The [`bbp`] module converts an external basic-block-profile text format
//! into traces (and, through the `icfp-trace/v1` writer, into on-disk
//! containers), opening the suite beyond the four synthetic generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbp;
pub mod gen;

pub use gen::{TraceSink, WorkloadSource};

use gen::{BranchyGen, DcacheThrashGen, Gen, PointerChaseGen, StreamingGen};
use icfp_isa::Trace;

/// A tiny deterministic PRNG (splitmix64).  Local so the workspace needs no
/// external `rand` dependency and trace generation stays reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Pointer chasing: a linked-list walk where every load's effective address is
/// derived from the previous load's value.  Serialises misses (no MLP), the
/// worst case for Runahead and the motivating case for iCFP's slice/rally.
///
/// `insts` is the approximate dynamic instruction count; `working_set` the
/// footprint in bytes (larger than L2 ⇒ every hop is an L2 miss).
pub fn pointer_chase(insts: usize, working_set: u64, seed: u64) -> Trace {
    gen::materialize(
        "pointer-chase",
        Gen::Chase(PointerChaseGen::new(working_set, seed)),
        insts,
    )
}

/// Data-cache thrashing: independent loads scattered over a working set that
/// conflicts in the L1 (and optionally the L2), each followed by a dependent
/// use and a burst of independent ALU work.  High MLP: the scenario where
/// advance execution overlaps many misses.
pub fn dcache_thrash(insts: usize, working_set: u64, seed: u64) -> Trace {
    gen::materialize(
        "dcache-thrash",
        Gen::Thrash(DcacheThrashGen::new(working_set, seed)),
        insts,
    )
}

/// Branch-heavy code with a mix of biased and hard-to-predict branches over a
/// small set of static PCs, exercising the PPM predictor, BTB and redirect
/// penalty modelling.
pub fn branchy(insts: usize, seed: u64) -> Trace {
    gen::materialize("branchy", Gen::Branchy(BranchyGen::new(seed)), insts)
}

/// Streaming: a unit-stride walk over a large array with interleaved
/// accumulation, plus a parallel store stream.  The stream prefetcher should
/// convert most misses into prefetch hits; the memory bus interval becomes
/// the bottleneck.
pub fn streaming(insts: usize, seed: u64) -> Trace {
    gen::materialize("streaming", Gen::Streaming(StreamingGen::new(seed)), insts)
}

/// One entry of the standard-workload registry: everything the rest of the
/// workspace needs to know about a workload, in one place.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// The workload's name (`icfp-bench --workload`, sweep columns, ...).
    pub name: &'static str,
    /// Workload class, for per-class geomeans in the figure renderer
    /// (`memory`, `control`, `streaming`).
    pub class: &'static str,
    ctor: fn(u64) -> Gen,
}

impl WorkloadSpec {
    /// Materializes the workload as an in-memory [`Trace`] (content identical
    /// to every previous release of the generators).
    pub fn trace(&self, insts: usize, seed: u64) -> Trace {
        gen::materialize(self.name, (self.ctor)(seed), insts)
    }

    /// The workload as a streaming block producer: bit-identical content,
    /// never fully materialized.
    pub fn source(&self, insts: usize, seed: u64, block_size: usize) -> WorkloadSource {
        WorkloadSource::new(self.name, (self.ctor)(seed), insts, block_size)
    }
}

/// The registry of standard scenarios, in suite order.  *The* table:
/// [`by_name`], [`by_name_or_err`], [`standard_suite`], [`STANDARD_NAMES`]
/// and [`class_of`] all derive from it, so a new workload is one added row.
pub const STANDARD: [WorkloadSpec; 4] = [
    WorkloadSpec {
        name: "pointer-chase",
        class: "memory",
        ctor: |seed| Gen::Chase(PointerChaseGen::new(8 * 1024 * 1024, seed)),
    },
    WorkloadSpec {
        name: "dcache-thrash",
        class: "memory",
        ctor: |seed| Gen::Thrash(DcacheThrashGen::new(256 * 1024, seed)),
    },
    WorkloadSpec {
        name: "branchy",
        class: "control",
        ctor: |seed| Gen::Branchy(BranchyGen::new(seed)),
    },
    WorkloadSpec {
        name: "streaming",
        class: "streaming",
        ctor: |seed| Gen::Streaming(StreamingGen::new(seed)),
    },
];

/// Names of the standard scenarios, in suite order (derived from
/// [`STANDARD`]).
pub const STANDARD_NAMES: [&str; 4] = [
    STANDARD[0].name,
    STANDARD[1].name,
    STANDARD[2].name,
    STANDARD[3].name,
];

/// The registry row for `name`, if it is a standard workload.
pub fn spec_by_name(name: &str) -> Option<&'static WorkloadSpec> {
    STANDARD.iter().find(|s| s.name == name)
}

/// The workload class of a standard workload (`memory`, `control`,
/// `streaming`); `None` for external (converted-trace) workloads.
pub fn class_of(name: &str) -> Option<&'static str> {
    spec_by_name(name).map(|s| s.class)
}

/// The four standard scenarios at a given dynamic-instruction budget,
/// suitable for benchmarking and smoke tests.
pub fn standard_suite(insts: usize, seed: u64) -> Vec<Trace> {
    STANDARD.iter().map(|s| s.trace(insts, seed)).collect()
}

/// Builds one of the standard scenarios by name (see [`STANDARD_NAMES`]).
/// Returns `None` for an unknown name.
pub fn by_name(name: &str, insts: usize, seed: u64) -> Option<Trace> {
    spec_by_name(name).map(|s| s.trace(insts, seed))
}

/// Builds one of the standard scenarios as a streaming block producer.
/// Returns `None` for an unknown name.
pub fn source_by_name(
    name: &str,
    insts: usize,
    seed: u64,
    block_size: usize,
) -> Option<WorkloadSource> {
    spec_by_name(name).map(|s| s.source(insts, seed, block_size))
}

/// [`by_name`], but an unknown name is an error message listing the valid
/// workloads — the same shape of diagnostic `icfp-bench --core` gives for an
/// unknown core model, so every front end (CLI, sweep validation, tests)
/// reports unknown workloads identically.
///
/// # Errors
///
/// Returns the diagnostic for unknown names.
pub fn by_name_or_err(name: &str, insts: usize, seed: u64) -> Result<Trace, String> {
    by_name(name, insts, seed).ok_or_else(|| {
        format!(
            "unknown workload {name:?}; valid workloads: {}",
            STANDARD_NAMES.join(", ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use icfp_isa::{Reg, TraceSource};

    #[test]
    fn generators_are_deterministic() {
        for name in STANDARD_NAMES {
            let a = by_name(name, 500, 42).unwrap();
            let b = by_name(name, 500, 42).unwrap();
            assert_eq!(a, b, "{name} must be reproducible");
            let c = by_name(name, 500, 43).unwrap();
            assert_ne!(a, c, "{name} must vary with the seed");
        }
    }

    #[test]
    fn suite_has_expected_shapes() {
        let suite = standard_suite(400, 7);
        assert_eq!(suite.len(), 4);
        for t in &suite {
            assert!(t.len() >= 400, "{} too short: {}", t.name(), t.len());
        }
        let chase = &suite[0];
        assert!(chase.stats().mem_fraction() > 0.2);
        let br = &suite[2];
        assert!(br.stats().branch_fraction() > 0.2);
    }

    #[test]
    fn pointer_chase_loads_depend_on_previous_load() {
        let t = pointer_chase(100, 1 << 20, 1);
        let loads: Vec<_> = t.iter().filter(|i| i.is_load()).collect();
        assert!(loads.len() > 10);
        for l in loads {
            assert_eq!(l.src1, Some(Reg::int(1)));
            assert_eq!(l.dst, Some(Reg::int(1)));
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("nope", 10, 0).is_none());
        assert!(source_by_name("nope", 10, 0, 64).is_none());
        assert!(by_name_or_err("nope", 10, 0)
            .unwrap_err()
            .contains("pointer-chase"));
    }

    #[test]
    fn registry_backs_every_lookup_consistently() {
        assert_eq!(STANDARD.len(), STANDARD_NAMES.len());
        for (spec, name) in STANDARD.iter().zip(STANDARD_NAMES) {
            assert_eq!(spec.name, name);
            assert_eq!(class_of(name), Some(spec.class));
            let t = by_name(name, 300, 5).unwrap();
            assert_eq!(t.name(), name);
            assert_eq!(t.digest(), spec.trace(300, 5).digest());
        }
        assert_eq!(class_of("pointer-chase"), Some("memory"));
        assert_eq!(class_of("branchy"), Some("control"));
        assert_eq!(class_of("imported-trace"), None);
    }

    #[test]
    fn streamed_source_matches_materialized_trace_exactly() {
        for spec in &STANDARD {
            let arena = spec.trace(700, 11);
            let src = spec.source(700, 11, 64);
            assert_eq!(src.name(), arena.name());
            assert_eq!(src.len(), arena.len(), "{}", spec.name);
            assert_eq!(src.digest(), arena.digest(), "{}", spec.name);
            // Concatenated blocks reproduce the arena byte for byte.
            let mut at = 0usize;
            for k in 0..src.block_count() {
                let b = src.block(k).unwrap();
                assert_eq!(b.first, at);
                for inst in b.insts() {
                    assert_eq!(inst, arena.get(at).unwrap(), "{} inst {at}", spec.name);
                    at += 1;
                }
                assert_eq!(src.block_digest(k).unwrap(), {
                    icfp_isa::block_digest_of(b.insts())
                });
            }
            assert_eq!(at, arena.len());
            // Random re-access regenerates identically (snapshot resume).
            let again = src.block(0).unwrap();
            assert_eq!(again.insts()[0], *arena.get(0).unwrap());
        }
    }

    #[test]
    fn streamed_source_residency_is_bounded() {
        let spec = &STANDARD[0];
        let src = spec.source(5_000, 3, 128);
        let cur = icfp_isa::TraceCursor::new(&src);
        for k in 0..src.len() {
            let _ = cur.get(k);
        }
        let peak = src.residency().expect("streamed source counts").peak();
        assert!(peak <= 4, "peak resident blocks {peak} not bounded");
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-good splitmix64 sequence for seed 0 (reference implementation).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
