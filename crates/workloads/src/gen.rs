//! Resumable generator state machines behind the synthetic workloads.
//!
//! Each of the four standard generators is a small cloneable state machine
//! ([`Gen`]) that emits one *burst* (one loop iteration of the original
//! generator, 1–8 instructions) per call.  The same state machine drives two
//! frontends:
//!
//! * [`materialize`] — run bursts into a [`TraceBuilder`] until the budget is
//!   met, producing exactly the `Trace` the pre-streaming generators built
//!   (bit-identical content, digests unchanged);
//! * [`WorkloadSource`] — a streaming [`TraceSource`]: the constructor makes
//!   one O(total) scan recording a tiny resume snapshot (generator clone +
//!   PC/seq state + the few overshoot instructions of a split burst) per
//!   block boundary, and [`TraceSource::block`] re-generates any block from
//!   its snapshot on demand.  A 100M-instruction pointer-chase is never
//!   resident beyond a handful of blocks plus the boundary table.

use crate::SplitMix64;
use icfp_isa::source::{
    block_digest_of, BlockCache, Residency, TraceBlock, TraceSource, TraceSourceError,
};
use icfp_isa::{DynInst, Fnv1a, InstSeq, Op, Reg, Trace, TraceBuilder};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;

/// A consumer of generated instructions, mirroring the [`TraceBuilder`]
/// surface the original generators were written against (push order assigns
/// sequence numbers; zero PCs are assigned from a running counter;
/// [`TraceSink::set_next_pc`] models loops).  Implemented by
/// [`TraceBuilder`], by the streaming emitter here, and by the
/// `icfp-trace/v1` writer adapter in the converter.
pub trait TraceSink {
    /// Appends one instruction.
    fn push(&mut self, inst: DynInst);
    /// Overrides the PC assigned to the next zero-PC instruction.
    fn set_next_pc(&mut self, pc: u64);
    /// Instructions emitted so far (the generators' loop-budget condition).
    fn emitted(&self) -> usize;
}

impl TraceSink for TraceBuilder {
    fn push(&mut self, inst: DynInst) {
        TraceBuilder::push(self, inst);
    }

    fn set_next_pc(&mut self, pc: u64) {
        TraceBuilder::set_next_pc(self, pc);
    }

    fn emitted(&self) -> usize {
        self.len()
    }
}

// ---------------------------------------------------------------------------
// The four generator state machines
// ---------------------------------------------------------------------------

/// Pointer-chase state (see [`crate::pointer_chase`]).
#[derive(Debug, Clone)]
pub(crate) struct PointerChaseGen {
    rng: SplitMix64,
    slots: u64,
    cursor: u64,
}

impl PointerChaseGen {
    pub(crate) fn new(working_set: u64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
        let slots = (working_set / 64).max(4);
        let cursor = rng.below(slots);
        PointerChaseGen { rng, slots, cursor }
    }

    fn burst(&mut self, b: &mut dyn TraceSink) {
        let base = 0x10_0000u64;
        let addr = base + self.cursor * 64;
        // The chase: ld r1, [r1]; the trace pre-resolves the address.
        b.push(DynInst::load(Reg::int(1), Reg::int(1), addr));
        // A short dependent computation on the loaded value.
        b.push(DynInst::alu_imm(Op::Add, Reg::int(2), Reg::int(1), 1));
        b.push(DynInst::alu(Op::Xor, Reg::int(3), Reg::int(2), Reg::int(3)));
        // Some independent work the pipeline could overlap.
        for _ in 0..self.rng.below(4) {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(4), Reg::int(5), 3));
        }
        self.cursor = self.rng.below(self.slots);
    }
}

/// Data-cache-thrash state (see [`crate::dcache_thrash`]).
#[derive(Debug, Clone)]
pub(crate) struct DcacheThrashGen {
    rng: SplitMix64,
    slots: u64,
}

impl DcacheThrashGen {
    pub(crate) fn new(working_set: u64, seed: u64) -> Self {
        DcacheThrashGen {
            rng: SplitMix64::new(seed ^ 0xD0_D0),
            slots: (working_set / 64).max(8),
        }
    }

    fn burst(&mut self, b: &mut dyn TraceSink) {
        let base = 0x40_0000u64;
        let addr = base + self.rng.below(self.slots) * 64;
        let dst = 1 + (self.rng.below(6) as usize);
        b.push(DynInst::load(Reg::int(dst), Reg::int(7), addr));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(8), Reg::int(dst), 1));
        for _ in 0..2 + self.rng.below(4) {
            b.push(DynInst::alu_imm(Op::Add, Reg::int(9), Reg::int(10), 5));
        }
        if self.rng.chance(0.25) {
            // Occasional store to a recently loaded line: forwarding traffic.
            b.push(DynInst::store(Reg::int(8), Reg::int(7), addr ^ 8));
        }
    }
}

/// Branchy-code state (see [`crate::branchy`]).
#[derive(Debug, Clone)]
pub(crate) struct BranchyGen {
    rng: SplitMix64,
    bias_state: u64,
}

impl BranchyGen {
    pub(crate) fn new(seed: u64) -> Self {
        BranchyGen {
            rng: SplitMix64::new(seed ^ 0xB4A4C4),
            bias_state: 0,
        }
    }

    fn burst(&mut self, b: &mut dyn TraceSink) {
        let pc = 0x2000 + self.rng.below(16) * 8;
        let hard = self.rng.chance(0.3);
        self.bias_state = self
            .bias_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1);
        let taken = if hard {
            self.rng.chance(0.5)
        } else {
            self.bias_state & 0xF != 0 // ~94% taken
        };
        let predictability = if hard { 0.55 } else { 0.95 };
        b.push(DynInst::alu_imm(Op::CmpLt, Reg::int(1), Reg::int(2), 1));
        b.set_next_pc(pc);
        b.push(DynInst::branch(Reg::int(1), taken, 0x4000 + pc, predictability));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(3), 1));
    }
}

/// Streaming-walk state (see [`crate::streaming`]).
#[derive(Debug, Clone)]
pub(crate) struct StreamingGen {
    base: u64,
    off: u64,
}

impl StreamingGen {
    pub(crate) fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x57_12EA);
        StreamingGen {
            base: 0x80_0000u64 + rng.below(64) * 4096,
            off: 0,
        }
    }

    fn burst(&mut self, b: &mut dyn TraceSink) {
        b.push(DynInst::load(Reg::int(1), Reg::int(2), self.base + self.off));
        b.push(DynInst::alu(Op::FpAdd, Reg::fp(1), Reg::fp(1), Reg::fp(2)));
        b.push(DynInst::alu_imm(Op::Add, Reg::int(3), Reg::int(1), 7));
        if self.off % 128 == 64 {
            b.push(DynInst::store(
                Reg::int(3),
                Reg::int(4),
                self.base + 0x200_0000 + self.off,
            ));
        }
        self.off += 8;
    }
}

/// One of the four generator state machines, as a cloneable value (the
/// block-boundary resume snapshot is literally a clone of this).
#[derive(Debug, Clone)]
pub(crate) enum Gen {
    Chase(PointerChaseGen),
    Thrash(DcacheThrashGen),
    Branchy(BranchyGen),
    Streaming(StreamingGen),
}

impl Gen {
    /// Emits one burst (one loop iteration of the original generator).
    fn burst(&mut self, sink: &mut dyn TraceSink) {
        match self {
            Gen::Chase(g) => g.burst(sink),
            Gen::Thrash(g) => g.burst(sink),
            Gen::Branchy(g) => g.burst(sink),
            Gen::Streaming(g) => g.burst(sink),
        }
    }
}

/// Runs `gen` into a fresh [`TraceBuilder`] until at least `insts`
/// instructions exist — byte-for-byte what the pre-streaming generator
/// functions produced.
pub(crate) fn materialize(name: &str, mut gen: Gen, insts: usize) -> Trace {
    let mut b = TraceBuilder::new(name);
    while b.len() < insts {
        gen.burst(&mut b);
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Streaming emission
// ---------------------------------------------------------------------------

/// PC/seq assignment state plus the overshoot queue of a split burst —
/// everything (besides the generator itself) needed to resume emission at an
/// arbitrary instruction boundary.
#[derive(Debug, Clone)]
struct EmitState {
    gen: Gen,
    next_pc: u64,
    /// Sequence number of the next emitted instruction == instructions
    /// emitted so far (bursts check this against the budget).
    next_seq: u64,
    /// Instructions a burst emitted past the point we have consumed
    /// (already PC/seq-assigned).  Bounded by the largest burst (8).
    pending: VecDeque<DynInst>,
}

impl EmitState {
    fn new(gen: Gen) -> Self {
        EmitState {
            gen,
            next_pc: 0x1000,
            next_seq: 0,
            pending: VecDeque::new(),
        }
    }

    /// Pulls the next instruction of the logical stream, or `None` once the
    /// generator's budget condition (`emitted >= target`) stops it.
    fn next(&mut self, target: usize) -> Option<DynInst> {
        if let Some(i) = self.pending.pop_front() {
            return Some(i);
        }
        // The original generators loop `while emitted < target { burst }`:
        // a burst fires iff the count *before* it is under budget.
        if self.next_seq as usize >= target {
            return None;
        }
        let mut sink = PendingSink {
            pending: &mut self.pending,
            next_pc: &mut self.next_pc,
            next_seq: &mut self.next_seq,
        };
        self.gen.burst(&mut sink);
        self.pending.pop_front()
    }
}

/// [`TraceSink`] that assigns PC/seq exactly like [`TraceBuilder`] but emits
/// into the overshoot queue instead of an arena.
struct PendingSink<'a> {
    pending: &'a mut VecDeque<DynInst>,
    next_pc: &'a mut u64,
    next_seq: &'a mut u64,
}

impl TraceSink for PendingSink<'_> {
    fn push(&mut self, mut inst: DynInst) {
        inst.seq = *self.next_seq as InstSeq;
        if inst.pc == 0 {
            inst.pc = *self.next_pc;
        }
        *self.next_pc = inst.pc + 4;
        *self.next_seq += 1;
        self.pending.push_back(inst);
    }

    fn set_next_pc(&mut self, pc: u64) {
        *self.next_pc = pc;
    }

    fn emitted(&self) -> usize {
        *self.next_seq as usize
    }
}

/// Streaming [`TraceSource`] over a synthetic generator: block `k` is
/// re-generated on demand from the boundary snapshot recorded during the
/// constructor's single scan.  Content, digests and block geometry are
/// identical to [`materialize`]-ing the same generator and wrapping it in an
/// [`icfp_isa::ArenaSource`] with the same block size — streamed and
/// arena-backed simulations are bit-identical.
#[derive(Debug)]
pub struct WorkloadSource {
    name: String,
    target: usize,
    total: usize,
    block_size: usize,
    whole_digest: u64,
    block_digests: Vec<u64>,
    boundaries: Vec<EmitState>,
    residency: Arc<Residency>,
    /// Bounded MRU cache of regenerated blocks: regeneration is cheap,
    /// residency is what matters.
    cache: BlockCache,
}

/// Regenerated blocks kept resident per source (current + lookback).
const GEN_RESIDENT_BLOCKS: usize = 3;

impl WorkloadSource {
    pub(crate) fn new(name: &str, gen: Gen, insts: usize, block_size: usize) -> Self {
        let block_size = block_size.max(1);
        let mut emit = EmitState::new(gen);
        let mut boundaries = Vec::new();
        let mut block_digests = Vec::new();
        let mut whole = Fnv1a::new();
        whole.write(name.as_bytes());
        let mut buf: Vec<u8> = Vec::with_capacity(64);
        let mut block: Vec<DynInst> = Vec::with_capacity(block_size);
        loop {
            boundaries.push(emit.clone());
            block.clear();
            while block.len() < block_size {
                match emit.next(insts) {
                    Some(i) => block.push(i),
                    None => break,
                }
            }
            if block.is_empty() {
                boundaries.pop();
                break;
            }
            for inst in &block {
                buf.clear();
                Serialize::serialize(inst, &mut buf);
                whole.write(&buf);
            }
            block_digests.push(block_digest_of(&block));
            if block.len() < block_size {
                break;
            }
        }
        let total = emit.next_seq as usize;
        whole.write_u64(total as u64);
        WorkloadSource {
            name: name.to_string(),
            target: insts,
            total,
            block_size,
            whole_digest: whole.finish(),
            block_digests,
            boundaries,
            residency: Arc::new(Residency::default()),
            cache: BlockCache::new(GEN_RESIDENT_BLOCKS),
        }
    }
}

impl TraceSource for WorkloadSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn len(&self) -> usize {
        self.total
    }

    fn digest(&self) -> u64 {
        self.whole_digest
    }

    fn block_size(&self) -> usize {
        self.block_size
    }

    fn block(&self, index: usize) -> Result<Arc<TraceBlock>, TraceSourceError> {
        self.cache.get_or_insert(index, || {
            let Some(boundary) = self.boundaries.get(index) else {
                return Err(TraceSourceError::BlockOutOfRange {
                    index,
                    count: self.boundaries.len(),
                });
            };
            let mut emit = boundary.clone();
            let mut insts = Vec::with_capacity(self.block_size);
            while insts.len() < self.block_size {
                match emit.next(self.target) {
                    Some(i) => insts.push(i),
                    None => break,
                }
            }
            debug_assert_eq!(
                block_digest_of(&insts),
                self.block_digests[index],
                "regenerated block diverged from the scan"
            );
            Ok(Arc::new(TraceBlock::counted(
                index * self.block_size,
                insts,
                &self.residency,
            )))
        })
    }

    fn block_digest(&self, index: usize) -> Result<u64, TraceSourceError> {
        self.block_digests
            .get(index)
            .copied()
            .ok_or(TraceSourceError::BlockOutOfRange {
                index,
                count: self.block_digests.len(),
            })
    }

    fn residency(&self) -> Option<&Residency> {
        Some(&self.residency)
    }
}

impl From<WorkloadSource> for Arc<dyn TraceSource> {
    fn from(src: WorkloadSource) -> Self {
        Arc::new(src)
    }
}
