//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! See `crates/serde` for why this exists.  The derives expand to nothing:
//! the workspace only uses them as annotations, never through serde's trait
//! machinery.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
