//! Real `Serialize` / `Deserialize` derive macros for the vendored `serde`.
//!
//! This build environment is offline, so the workspace vendors a minimal
//! serde (see `crates/serde`): a compact little-endian binary codec behind
//! `Serialize` / `Deserialize` traits.  These derives generate field-by-field
//! codec impls for the shapes the workspace actually uses:
//!
//! * structs with named fields (including empty ones),
//! * tuple structs and unit structs,
//! * enums whose variants are unit, tuple or struct-like (encoded as a
//!   `u32` variant tag followed by the variant's fields).
//!
//! Generic types are intentionally unsupported (no annotated type in the
//! workspace is generic); attempting to derive on one produces a compile
//! error rather than a subtly wrong impl.  The parser works on the raw
//! `proc_macro::TokenStream` — no `syn`/`quote`, which are unavailable
//! offline — and the generated code spells every path absolutely
//! (`::serde::...`, `::std::...`) so it expands correctly in any crate that
//! depends on the vendored `serde`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `::serde::Serialize` (field-by-field binary encode).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `::serde::Deserialize` (field-by-field binary decode).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The shape of the fields of a struct or of one enum variant.
enum Fields {
    /// `{ a: T, b: U }` — the named fields in declaration order.
    Named(Vec<String>),
    /// `( T, U )` — the number of fields.
    Tuple(usize),
    /// No field list at all (`struct X;` / unit variant).
    Unit,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated code must parse")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i) {
        Some(k) if k == "struct" || k == "enum" => k,
        Some(other) => return Err(format!("cannot derive for `{other}` items")),
        None => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = ident_at(&tokens, i).ok_or_else(|| "expected an item name".to_string())?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive Serialize/Deserialize for generic type `{name}` \
             (the vendored serde derives support only concrete types)"
        ));
    }

    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        Ok(Item::Struct { name, fields })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err(format!("enum `{name}` has no body")),
        };
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past outer attributes (`#[...]`, doc comments) and a leading
/// visibility (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parses `a: T, b: U, ...` (brace-struct bodies), returning the field names
/// in declaration order.  Commas inside angle brackets (`HashMap<K, V>`) and
/// inside groups do not split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or_else(|| "expected a field name".to_string())?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
        // `skip_type` stops at (and consumes) the separating comma, if any.
    }
    Ok(fields)
}

/// Counts the fields of a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

/// Skips one type (or expression) up to — and including — the next top-level
/// comma.  Tracks `<`/`>` nesting so generic arguments do not end the field,
/// and steps over `->` as a unit so fn-pointer return arrows are not
/// mistaken for closing angle brackets (which would desynchronize the depth
/// and silently merge the next field into this type).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p)
                if p.as_char() == '-'
                    && matches!(tokens.get(*i + 1), Some(TokenTree::Punct(q)) if q.as_char() == '>') =>
            {
                *i += 1; // the '>' of '->' is consumed by the shared bump below
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or_else(|| "expected a variant name".to_string())?;
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_type(&tokens, &mut i);
        variants.push((name, fields));
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => names
                    .iter()
                    .map(|f| format!("::serde::Serialize::serialize(&self.{f}, out);"))
                    .collect::<String>(),
                Fields::Tuple(n) => (0..*n)
                    .map(|k| format!("::serde::Serialize::serialize(&self.{k}, out);"))
                    .collect::<String>(),
                Fields::Unit => String::new(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize(&self, out: &mut ::std::vec::Vec<u8>) {{ {body} }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, (vname, fields)) in variants.iter().enumerate() {
                let (pattern, writes) = match fields {
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let writes = names
                            .iter()
                            .map(|f| format!("::serde::Serialize::serialize({f}, out);"))
                            .collect::<String>();
                        (format!("{name}::{vname} {{ {binds} }}"), writes)
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let writes = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b}, out);"))
                            .collect::<String>();
                        (format!("{name}::{vname}({})", binds.join(", ")), writes)
                    }
                    Fields::Unit => (format!("{name}::{vname}"), String::new()),
                };
                arms.push_str(&format!(
                    "{pattern} => {{ ::serde::Serialize::serialize(&{tag}u32, out); {writes} }}"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize(&self, out: &mut ::std::vec::Vec<u8>) {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let de = "::serde::Deserialize::deserialize(r)?";
    match item {
        Item::Struct { name, fields } => {
            let ctor = construct(name, fields, de);
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn deserialize(r: &mut ::serde::Reader<'_>) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         ::std::result::Result::Ok({ctor})\
                     }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (tag, (vname, fields)) in variants.iter().enumerate() {
                let ctor = construct(&format!("{name}::{vname}"), fields, de);
                arms.push_str(&format!("{tag}u32 => {ctor},"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn deserialize(r: &mut ::serde::Reader<'_>) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\
                         let tag: u32 = ::serde::Deserialize::deserialize(r)?;\
                         ::std::result::Result::Ok(match tag {{\
                             {arms}\
                             _ => return ::std::result::Result::Err(\
                                 ::serde::Error::invalid(\"enum variant tag\", r.position())),\
                         }})\
                     }}\
                 }}"
            )
        }
    }
}

/// A constructor expression for `path` with every field deserialized in
/// declaration order (`de` is the per-field deserialize expression).
fn construct(path: &str, fields: &Fields, de: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let inits = names
                .iter()
                .map(|f| format!("{f}: {de},"))
                .collect::<String>();
            format!("{path} {{ {inits} }}")
        }
        Fields::Tuple(n) => {
            let inits = (0..*n).map(|_| format!("{de},")).collect::<String>();
            format!("{path}({inits})")
        }
        Fields::Unit => path.to_string(),
    }
}
