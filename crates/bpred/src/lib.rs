//! # icfp-bpred — branch prediction substrate
//!
//! The paper's front end uses a "24 Kbyte 3-table PPM direction predictor
//! \[14\], 2K-entry target buffer, 32-entry RAS" (Table 1).  This crate
//! provides:
//!
//! * [`PpmPredictor`] — a PPM-like, tag-based direction predictor with a
//!   bimodal base table and multiple tagged history tables (the structure of
//!   Michaud's PPM predictor, the ancestor of TAGE);
//! * [`Btb`] — a set-associative branch target buffer;
//! * [`ReturnAddressStack`] — a circular return-address stack;
//! * [`BranchPredictor`] — the combined front-end predictor used by the cores.
//!
//! The simulator is trace-driven, so predictions are only used to decide
//! whether a branch pays the mis-prediction redirect penalty; wrong-path
//! instructions are not simulated (they would be squashed in any case).
//!
//! ```
//! use icfp_bpred::{BranchPredictor, PredictorConfig};
//!
//! let mut bp = BranchPredictor::new(PredictorConfig::paper_default());
//! // A heavily-biased branch quickly becomes predictable.
//! let mut correct = 0;
//! for _ in 0..1000 {
//!     let p = bp.predict(0x1000);
//!     if p.taken { correct += 1; }
//!     bp.update(0x1000, true, 0x2000);
//! }
//! assert!(correct > 900);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btb;
pub mod ppm;
pub mod ras;

pub use btb::Btb;
pub use ppm::{PpmConfig, PpmPredictor};
pub use ras::ReturnAddressStack;

use icfp_isa::Addr;
use serde::{Deserialize, Serialize};

/// A combined direction + target prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target, if the BTB had an entry.
    pub target: Option<Addr>,
}

/// Configuration of the combined front-end predictor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Direction-predictor configuration.
    pub ppm: PpmConfig,
    /// BTB entries.
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
    /// Return-address-stack depth.
    pub ras_entries: usize,
}

impl PredictorConfig {
    /// The configuration from Table 1 of the paper.
    pub fn paper_default() -> Self {
        PredictorConfig {
            ppm: PpmConfig::paper_default(),
            btb_entries: 2048,
            btb_assoc: 4,
            ras_entries: 32,
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-run branch prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BpredStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Direction mis-predictions.
    pub direction_mispredicts: u64,
    /// Target mis-predictions (BTB miss or wrong target on a taken branch).
    pub target_mispredicts: u64,
}

impl BpredStats {
    /// Direction mis-prediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.direction_mispredicts as f64 / self.predictions as f64
        }
    }
}

/// The combined front-end branch predictor: PPM direction predictor + BTB +
/// return address stack.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchPredictor {
    ppm: PpmPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    stats: BpredStats,
}

impl BranchPredictor {
    /// Creates a predictor from a configuration.
    pub fn new(config: PredictorConfig) -> Self {
        BranchPredictor {
            ppm: PpmPredictor::new(config.ppm),
            btb: Btb::new(config.btb_entries, config.btb_assoc),
            ras: ReturnAddressStack::new(config.ras_entries),
            stats: BpredStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BpredStats {
        &self.stats
    }

    /// Predicts the direction and target of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: Addr) -> Prediction {
        Prediction {
            taken: self.ppm.predict(pc),
            target: self.btb.lookup(pc),
        }
    }

    /// Updates predictor state with the resolved outcome of the branch at
    /// `pc`, and reports whether the prediction made *now* (before the update)
    /// would have been correct.  Returns `true` if the branch was
    /// mis-predicted (direction or, for taken branches, target).
    pub fn update(&mut self, pc: Addr, taken: bool, target: Addr) -> bool {
        self.stats.predictions += 1;
        // `PpmPredictor::update` reports the direction it would have
        // predicted before training, so resolving a branch costs one table
        // walk instead of a separate predict + update pass.
        let target_pred = self.btb.lookup(pc);
        let dir_pred = self.ppm.update(pc, taken);
        let dir_wrong = dir_pred != taken;
        if dir_wrong {
            self.stats.direction_mispredicts += 1;
        }
        let target_wrong = taken && target_pred != Some(target);
        if target_wrong && !dir_wrong {
            self.stats.target_mispredicts += 1;
        }
        if taken {
            self.btb.insert(pc, target);
        }
        dir_wrong || target_wrong
    }

    /// Pushes a return address (call instruction).
    pub fn push_return(&mut self, return_addr: Addr) {
        self.ras.push(return_addr);
    }

    /// Pops a predicted return address (return instruction).
    pub fn pop_return(&mut self) -> Option<Addr> {
        self.ras.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_becomes_predictable() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_default());
        let mut wrong = 0;
        for i in 0..2000u64 {
            let taken = true;
            if bp.update(0x4000, taken, 0x5000) {
                wrong += 1;
            }
            let _ = i;
        }
        assert!(wrong < 20, "biased branch mis-predicted {wrong} times");
    }

    #[test]
    fn alternating_pattern_is_learned_by_history_tables() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_default());
        let mut wrong_late = 0;
        for i in 0..4000u64 {
            let taken = i % 2 == 0;
            let mis = bp.update(0x4000, taken, 0x5000);
            if i > 2000 && mis {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late < 200,
            "alternating branch should be learned, {wrong_late} late mispredicts"
        );
    }

    #[test]
    fn random_pattern_mispredicts_about_half() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_default());
        // Deterministic pseudo-random direction stream.
        let mut x = 0x12345678u64;
        let mut wrong = 0;
        let n = 4000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 1;
            if bp.update(0x4000, taken, 0x5000) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / n as f64;
        assert!(rate > 0.3 && rate < 0.7, "random branch rate {rate}");
    }

    #[test]
    fn stats_track_predictions() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_default());
        for _ in 0..10 {
            bp.update(0x100, true, 0x200);
        }
        assert_eq!(bp.stats().predictions, 10);
        assert!(bp.stats().mispredict_rate() <= 1.0);
    }

    #[test]
    fn ras_round_trip() {
        let mut bp = BranchPredictor::new(PredictorConfig::paper_default());
        bp.push_return(0x1234);
        assert_eq!(bp.pop_return(), Some(0x1234));
    }
}
