//! Return address stack.

use icfp_isa::Addr;
use serde::{Deserialize, Serialize};

/// A fixed-depth circular return-address stack.
///
/// Overflow silently overwrites the oldest entry (as real hardware does);
/// underflow returns `None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    capacity: usize,
    top: usize,
    len: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with the given depth.
    pub fn new(capacity: usize) -> Self {
        ReturnAddressStack {
            entries: vec![0; capacity.max(1)],
            capacity: capacity.max(1),
            top: 0,
            len: 0,
        }
    }

    /// Pushes a return address (call).
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.capacity;
        self.entries[self.top] = addr;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Pops the predicted return address (return).
    pub fn pop(&mut self) -> Option<Addr> {
        if self.len == 0 {
            return None;
        }
        let v = self.entries[self.top];
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.len -= 1;
        Some(v)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(4);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_keeps_newest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn empty_is_reported() {
        let mut r = ReturnAddressStack::new(3);
        assert!(r.is_empty());
        r.push(7);
        assert!(!r.is_empty());
        r.pop();
        assert!(r.is_empty());
    }

    #[test]
    fn zero_capacity_behaves_as_depth_one() {
        let mut r = ReturnAddressStack::new(0);
        r.push(9);
        assert_eq!(r.pop(), Some(9));
    }
}
