//! PPM-like tag-based direction predictor (Michaud, JILP 2005) — the
//! predictor the paper configures as a "24 Kbyte 3-table PPM direction
//! predictor".
//!
//! Structure: a tagless bimodal base table plus `N` tagged tables indexed by
//! hashes of increasingly long global-history prefixes.  Prediction comes from
//! the longest-history table that tags-match; update trains the providing
//! table and allocates into a longer-history table on a mis-prediction.

use icfp_isa::Addr;
use serde::{Deserialize, Serialize};

/// Configuration of the PPM predictor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PpmConfig {
    /// log2 of the number of entries in the bimodal base table.
    pub base_bits: u32,
    /// log2 of the number of entries in each tagged table.
    pub tagged_bits: u32,
    /// Global-history lengths used by the tagged tables (shortest first).
    pub history_lengths: Vec<u32>,
    /// Tag width in bits.
    pub tag_bits: u32,
}

impl PpmConfig {
    /// A 3-tagged-table configuration totalling roughly 24 KB of state, per
    /// the paper's Table 1.
    pub fn paper_default() -> Self {
        PpmConfig {
            base_bits: 13,     // 8K 2-bit counters = 2 KB
            tagged_bits: 12,   // 3 × 4K entries × ~11 bits ≈ 16.5 KB
            history_lengths: vec![4, 12, 32],
            tag_bits: 8,
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny() -> Self {
        PpmConfig {
            base_bits: 6,
            tagged_bits: 6,
            history_lengths: vec![2, 6],
            tag_bits: 6,
        }
    }
}

impl Default for PpmConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit up/down counter, 0..=7, taken if >= 4.
    counter: u8,
    /// Usefulness bit for replacement.
    useful: bool,
    valid: bool,
}

/// The PPM-like direction predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PpmPredictor {
    config: PpmConfig,
    /// 2-bit counters, taken if >= 2.
    base: Vec<u8>,
    tagged: Vec<Vec<TaggedEntry>>,
    /// Global history register (most recent outcome in bit 0).
    history: u64,
}

impl PpmConfig {
    /// Validates the configuration's structural limits.
    ///
    /// # Errors
    ///
    /// Tags are stored in `u16` (so `tag_bits` must be 1..=16), table index
    /// widths must stay addressable, and at least one tagged table must
    /// exist.
    pub fn validate(&self) -> Result<(), String> {
        if self.tag_bits == 0 || self.tag_bits > 16 {
            return Err(format!(
                "ppm tag_bits must be 1..=16 (tags are u16), got {}",
                self.tag_bits
            ));
        }
        if self.base_bits == 0 || self.base_bits > 28 {
            return Err(format!("ppm base_bits must be 1..=28, got {}", self.base_bits));
        }
        if self.tagged_bits == 0 || self.tagged_bits > 28 {
            return Err(format!(
                "ppm tagged_bits must be 1..=28, got {}",
                self.tagged_bits
            ));
        }
        if self.history_lengths.is_empty() {
            return Err("ppm needs at least one tagged history length".into());
        }
        if self.history_lengths.len() > MAX_TABLES {
            return Err(format!(
                "ppm supports at most {MAX_TABLES} tagged history lengths, got {}",
                self.history_lengths.len()
            ));
        }
        Ok(())
    }
}

/// Upper bound on the number of tagged tables, so per-branch lookups can use
/// fixed stack arrays instead of heap scratch.  The paper's configuration uses
/// 3 tables; [`PpmConfig::validate`] rejects geometries above this bound.
pub const MAX_TABLES: usize = 16;

/// Per-table indices and tags for one branch PC, computed once per lookup.
///
/// Index and tag hashing each fold the global history register, so computing
/// them is the expensive part of a prediction.  `predict` + `update` used to
/// redo this walk three times per resolved branch; a `Lookup` is computed once
/// and shared across provider selection, the prediction read, provider
/// training and mis-prediction allocation.
struct Lookup {
    tables: usize,
    idx: [u32; MAX_TABLES],
    tag: [u16; MAX_TABLES],
    /// Longest-history table whose entry tag-matches, if any.
    provider: Option<usize>,
}

/// The tag mask for a tag of `tag_bits` bits.  Written with an explicit
/// full-width case because `(1u16 << 16) - 1` overflows the shift (a panic in
/// debug builds, silent wrap in release).
#[inline]
fn tag_mask(tag_bits: u32) -> u16 {
    if tag_bits >= 16 {
        u16::MAX
    } else {
        (1u16 << tag_bits) - 1
    }
}

impl PpmPredictor {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PpmConfig::validate`] — invalid
    /// geometries are rejected at construction rather than corrupting
    /// predictions (or overflowing shifts) later.
    pub fn new(config: PpmConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid PPM configuration: {e}");
        }
        let base = vec![1u8; 1 << config.base_bits];
        let tagged = config
            .history_lengths
            .iter()
            .map(|_| vec![TaggedEntry::default(); 1 << config.tagged_bits])
            .collect();
        PpmPredictor {
            config,
            base,
            tagged,
            history: 0,
        }
    }

    fn fold_history(&self, length: u32, bits: u32) -> u64 {
        // Fold `length` bits of history into `bits` bits by xoring chunks.
        let mut h = self.history & ((1u64 << length.min(63)) - 1).max(1);
        if length >= 64 {
            h = self.history;
        }
        let mut folded = 0u64;
        let mask = (1u64 << bits) - 1;
        while h != 0 {
            folded ^= h & mask;
            h >>= bits;
        }
        folded
    }

    fn tagged_index(&self, pc: Addr, table: usize) -> usize {
        let bits = self.config.tagged_bits;
        let hist = self.fold_history(self.config.history_lengths[table], bits);
        let idx = (pc >> 2) ^ hist ^ ((pc >> 2) >> bits) ^ (table as u64).wrapping_mul(0x9E3779B1);
        (idx as usize) & ((1 << bits) - 1)
    }

    fn tag_of(&self, pc: Addr, table: usize) -> u16 {
        let hist = self.fold_history(self.config.history_lengths[table], self.config.tag_bits);
        let t = (pc >> 2) ^ (hist << 1) ^ (pc >> 11);
        (t as u16) & tag_mask(self.config.tag_bits)
    }

    fn base_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & ((1 << self.config.base_bits) - 1)
    }

    /// Computes every table's index and tag for `pc` (one history-fold walk)
    /// and finds the providing table: the longest-history tagged table whose
    /// entry tag-matches.
    fn lookup(&self, pc: Addr) -> Lookup {
        let tables = self.tagged.len();
        let mut lk = Lookup {
            tables,
            idx: [0; MAX_TABLES],
            tag: [0; MAX_TABLES],
            provider: None,
        };
        for t in 0..tables {
            let idx = self.tagged_index(pc, t);
            let tag = self.tag_of(pc, t);
            lk.idx[t] = idx as u32;
            lk.tag[t] = tag;
            let e = &self.tagged[t][idx];
            if e.valid && e.tag == tag {
                // Tables are walked shortest-history first; the last match is
                // the longest-history provider.
                lk.provider = Some(t);
            }
        }
        lk
    }

    /// Reads the prediction out of an already-computed [`Lookup`].
    fn predict_from(&self, lk: &Lookup, pc: Addr) -> bool {
        match lk.provider {
            Some(t) => self.tagged[t][lk.idx[t] as usize].counter >= 4,
            None => self.base[self.base_index(pc)] >= 2,
        }
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        let lk = self.lookup(pc);
        self.predict_from(&lk, pc)
    }

    /// Updates the predictor with the resolved direction of the branch at
    /// `pc`, and returns the direction it predicted *before* the update — so
    /// resolving a branch needs a single table walk, not separate
    /// `predict` + `update` passes.
    pub fn update(&mut self, pc: Addr, taken: bool) -> bool {
        let lk = self.lookup(pc);
        let predicted = self.predict_from(&lk, pc);

        match lk.provider {
            Some(t) => {
                let e = &mut self.tagged[t][lk.idx[t] as usize];
                e.counter = bump3(e.counter, taken);
                e.useful = predicted == taken;
            }
            None => {
                let idx = self.base_index(pc);
                self.base[idx] = bump2(self.base[idx], taken);
            }
        }

        // On a mis-prediction, allocate in a table with longer history than
        // the provider (PPM/TAGE-style allocation).
        if predicted != taken {
            let start = lk.provider.map(|t| t + 1).unwrap_or(0);
            for t in start..lk.tables {
                let e = &mut self.tagged[t][lk.idx[t] as usize];
                if !e.valid || !e.useful {
                    *e = TaggedEntry {
                        tag: lk.tag[t],
                        counter: if taken { 4 } else { 3 },
                        useful: false,
                        valid: true,
                    };
                    break;
                }
            }
        }

        self.history = (self.history << 1) | u64::from(taken);
        predicted
    }

    /// Number of tagged tables.
    pub fn num_tables(&self) -> usize {
        self.tagged.len()
    }

    /// Approximate storage budget of the predictor in bytes.
    pub fn storage_bytes(&self) -> usize {
        let base_bits = self.base.len() * 2;
        let per_entry = 3 + 1 + self.config.tag_bits as usize;
        let tagged_bits: usize = self.tagged.iter().map(|t| t.len() * per_entry).sum();
        (base_bits + tagged_bits) / 8
    }
}

fn bump2(c: u8, up: bool) -> u8 {
    if up {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

fn bump3(c: u8, up: bool) -> u8 {
    if up {
        (c + 1).min(7)
    } else {
        c.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate() {
        assert_eq!(bump2(3, true), 3);
        assert_eq!(bump2(0, false), 0);
        assert_eq!(bump3(7, true), 7);
        assert_eq!(bump3(0, false), 0);
    }

    #[test]
    fn always_taken_is_learned_quickly() {
        let mut p = PpmPredictor::new(PpmConfig::tiny());
        for _ in 0..8 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
    }

    #[test]
    fn short_period_pattern_is_learned_via_history() {
        let mut p = PpmPredictor::new(PpmConfig::paper_default());
        // Pattern with period 4: T T N T
        let pattern = [true, true, false, true];
        let mut wrong_late = 0;
        for i in 0..4000usize {
            let taken = pattern[i % 4];
            if i > 2000 && p.predict(0x200) != taken {
                wrong_late += 1;
            }
            p.update(0x200, taken);
        }
        assert!(wrong_late < 100, "pattern not learned: {wrong_late} wrong");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut p = PpmPredictor::new(PpmConfig::paper_default());
        for _ in 0..200 {
            p.update(0x100, true);
            p.update(0x204, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x204));
    }

    #[test]
    fn full_width_tags_do_not_overflow_the_mask_shift() {
        // tag_bits == 16 used to evaluate `(1u16 << 16) - 1`: a panic in
        // debug builds.  The predictor must construct and train normally.
        let mut cfg = PpmConfig::tiny();
        cfg.tag_bits = 16;
        let mut p = PpmPredictor::new(cfg);
        for i in 0..64u64 {
            p.update(0x100 + (i % 4) * 8, i % 3 != 0);
        }
        let _ = p.predict(0x100);
        assert_eq!(tag_mask(16), u16::MAX);
        assert_eq!(tag_mask(8), 0xFF);
        assert_eq!(tag_mask(1), 0x01);
    }

    #[test]
    fn invalid_configs_are_rejected_at_construction() {
        for (mutate, what) in [
            ((|c: &mut PpmConfig| c.tag_bits = 0) as fn(&mut PpmConfig), "tag_bits"),
            (|c| c.tag_bits = 17, "tag_bits"),
            (|c| c.base_bits = 0, "base_bits"),
            (|c| c.tagged_bits = 40, "tagged_bits"),
            (|c| c.history_lengths.clear(), "history length"),
            (|c| c.history_lengths = vec![2; MAX_TABLES + 1], "history lengths"),
        ] {
            let mut cfg = PpmConfig::tiny();
            mutate(&mut cfg);
            let err = cfg.validate().expect_err(what);
            assert!(err.contains(what), "{what}: {err}");
            let result = std::panic::catch_unwind(|| PpmPredictor::new(cfg.clone()));
            assert!(result.is_err(), "{what} must be rejected at construction");
        }
    }

    #[test]
    fn update_returns_the_pre_update_prediction() {
        let mut p = PpmPredictor::new(PpmConfig::tiny());
        let mut x = 0xdeadbeefu64;
        for _ in 0..256 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = 0x100 + (x % 8) * 4;
            let taken = x & 2 != 0;
            let before = p.predict(pc);
            assert_eq!(p.update(pc, taken), before);
        }
    }

    #[test]
    fn storage_budget_is_near_24_kbytes() {
        let p = PpmPredictor::new(PpmConfig::paper_default());
        let kb = p.storage_bytes() as f64 / 1024.0;
        assert!(kb > 15.0 && kb < 32.0, "storage {kb} KB not near 24 KB");
        assert_eq!(p.num_tables(), 3);
    }
}
