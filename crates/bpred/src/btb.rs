//! Branch target buffer.

use icfp_isa::Addr;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct BtbEntry {
    valid: bool,
    tag: Addr,
    target: Addr,
    lru: u64,
}

/// A set-associative branch target buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    num_sets: usize,
    tick: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and the given associativity.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is zero or `entries` is not a multiple of `assoc`.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(assoc > 0, "BTB associativity must be positive");
        assert!(
            entries.is_multiple_of(assoc) && entries > 0,
            "BTB entries must be a positive multiple of associativity"
        );
        let num_sets = (entries / assoc).next_power_of_two();
        Btb {
            sets: vec![vec![BtbEntry::default(); assoc]; num_sets],
            num_sets,
            tick: 0,
        }
    }

    fn set_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.num_sets - 1)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&self, pc: Addr) -> Option<Addr> {
        let set = &self.sets[self.set_index(pc)];
        set.iter()
            .find(|e| e.valid && e.tag == pc)
            .map(|e| e.target)
    }

    /// Inserts or updates the target for the (taken) branch at `pc`.
    pub fn insert(&mut self, pc: Addr, target: Addr) {
        self.tick += 1;
        let tick = self.tick;
        let idx = self.set_index(pc);
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.tag == pc) {
            e.target = target;
            e.lru = tick;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("associativity > 0");
        *victim = BtbEntry {
            valid: true,
            tag: pc,
            target,
            lru: tick,
        };
    }

    /// Number of valid entries currently stored.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|e| e.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup() {
        let mut b = Btb::new(64, 4);
        assert_eq!(b.lookup(0x100), None);
        b.insert(0x100, 0x2000);
        assert_eq!(b.lookup(0x100), Some(0x2000));
    }

    #[test]
    fn update_overwrites_target() {
        let mut b = Btb::new(64, 4);
        b.insert(0x100, 0x2000);
        b.insert(0x100, 0x3000);
        assert_eq!(b.lookup(0x100), Some(0x3000));
        assert_eq!(b.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        let mut b = Btb::new(8, 2); // 4 sets, 2 ways
        // PCs mapping to the same set: stride num_sets*4 = 16 bytes.
        b.insert(0x100, 1);
        b.insert(0x110, 2);
        b.lookup(0x100);
        b.insert(0x100, 1); // refresh 0x100
        b.insert(0x120, 3); // evicts 0x110
        assert_eq!(b.lookup(0x100), Some(1));
        assert_eq!(b.lookup(0x110), None);
        assert_eq!(b.lookup(0x120), Some(3));
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_assoc_panics() {
        let _ = Btb::new(8, 0);
    }
}
