//! Facade crate re-exporting the iCFP reproduction workspace.
pub use icfp_area as area;
pub use icfp_bpred as bpred;
pub use icfp_core as core;
pub use icfp_isa as isa;
pub use icfp_mem as mem;
pub use icfp_pipeline as pipeline;
pub use icfp_sim as sim;
pub use icfp_sweep as sweep;
pub use icfp_workloads as workloads;
